#include "index/query_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp {
namespace {

const NeighborTable& nbtable() {
  static const NeighborTable t(blosum62(), 11);
  return t;
}

std::vector<Residue> random_query(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Residue> q(len);
  for (auto& r : q) r = static_cast<Residue>(rng.next_below(20));
  return q;
}

// Brute-force expected positions: p is listed under word w iff w is a
// neighbor of the query word at p.
std::vector<std::uint32_t> expected_positions(
    const std::vector<Residue>& query, std::uint32_t w) {
  std::vector<std::uint32_t> out;
  for (std::size_t p = 0; p + kWordLength <= query.size(); ++p) {
    const std::uint32_t qw = word_key(query.data() + p);
    if (NeighborTable::word_pair_score(blosum62(), qw, w) >= 11) {
      out.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return out;
}

TEST(QueryIndex, RejectsTooShortQuery) {
  const std::vector<Residue> q{0, 1};
  EXPECT_THROW(QueryIndex(q, nbtable()), Error);
}

TEST(QueryIndex, ExactWordIsFound) {
  const auto q = encode_sequence("ARNDCQ");
  const QueryIndex idx(q, nbtable());
  const std::uint32_t w = word_from_string("ARN");
  EXPECT_TRUE(idx.contains(w));
  const auto pos = idx.positions(w);
  EXPECT_TRUE(std::find(pos.begin(), pos.end(), 0u) != pos.end());
}

TEST(QueryIndex, PvBitAgreesWithPositions) {
  const auto q = random_query(300, 5);
  const QueryIndex idx(q, nbtable());
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
       w += 37) {
    EXPECT_EQ(idx.contains(w), !idx.positions(w).empty());
  }
}

TEST(QueryIndex, PositionsAreAscending) {
  const auto q = random_query(500, 7);
  const QueryIndex idx(q, nbtable());
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
       w += 13) {
    const auto pos = idx.positions(w);
    EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end()));
  }
}

TEST(QueryIndex, QueryLengthAccessor) {
  const auto q = random_query(123, 9);
  EXPECT_EQ(QueryIndex(q, nbtable()).query_length(), 123u);
}

TEST(QueryIndex, SpillCellsWorkBeyondInlineCapacity) {
  // A homopolymer query: the word AAA occurs at every position, far beyond
  // the 3 inline slots.
  const std::vector<Residue> q(50, encode_residue('A'));
  const QueryIndex idx(q, nbtable());
  const auto pos = idx.positions(word_from_string("AAA"));
  ASSERT_EQ(pos.size(), 48u);
  for (std::uint32_t i = 0; i < 48; ++i) EXPECT_EQ(pos[i], i);
}

TEST(QueryIndex, TotalPositionsCountsNeighborFanout) {
  const auto q = encode_sequence("ARNDCQEGHILK");
  const QueryIndex idx(q, nbtable());
  std::size_t manual = 0;
  for (std::size_t p = 0; p + kWordLength <= q.size(); ++p) {
    manual += nbtable().neighbors(word_key(q.data() + p)).size();
  }
  EXPECT_EQ(idx.total_positions(), manual);
}

// Property: for random queries, the index matches brute force for a sample
// of words (including words absent from the query).
class QueryIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryIndexProperty, MatchesBruteForce) {
  const auto q = random_query(128 + GetParam() * 64, GetParam());
  const QueryIndex idx(q, nbtable());
  Rng rng(GetParam() ^ 0xabc);
  for (int i = 0; i < 400; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.next_below(kNumWords));
    const auto want = expected_positions(q, w);
    const auto got = idx.positions(w);
    ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()), want)
        << "word " << word_to_string(w) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mublastp
