// Counter-level engine equivalence: the telemetry must report the same
// pipeline, not just the same results. All engines derive identical hit,
// two-hit-pair, HSP and gapped-extension counts on the same input; the two
// database-indexed engines additionally execute the identical set of
// ungapped extensions (paper Section V-E, extended to the counters).
#include <gtest/gtest.h>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

struct CounterCase {
  std::uint64_t seed;
  std::size_t db_residues;
  std::size_t query_len;
  std::size_t block_bytes;
};

class StatsEquivalence : public ::testing::TestWithParam<CounterCase> {
 protected:
  void SetUp() override {
    const CounterCase& c = GetParam();
    db_ = synth::generate_database(synth::sprot_like(c.db_residues), c.seed);
    Rng rng(c.seed ^ 0x57a7);
    queries_ = synth::sample_queries(db_, 3, c.query_len, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = c.block_bytes;
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }

  template <typename Engine>
  stats::PipelineSnapshot snap_of(const Engine& engine,
                                  std::span<const Residue> query) {
    stats::PipelineStats ps;
    (void)engine.search(query, ps);
    return ps.snapshot();
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
};

TEST_P(StatsEquivalence, CountersAgreeAcrossEngines) {
  const QueryIndexedEngine ncbi(db_);
  const InterleavedDbEngine ncbi_db(*index_);
  const MuBlastpEngine mu(*index_);
  MuBlastpOptions nopf;
  nopf.prefilter = false;
  const MuBlastpEngine mu_nopf(*index_, {}, nopf);

  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const stats::PipelineSnapshot s_ncbi = snap_of(ncbi, query);
    const stats::PipelineSnapshot s_db = snap_of(ncbi_db, query);
    const stats::PipelineSnapshot s_mu = snap_of(mu, query);
    const stats::PipelineSnapshot s_nopf = snap_of(mu_nopf, query);

    // The hit set is scan-order independent (symmetric neighbor relation):
    // every engine, including the query-indexed baseline, counts it alike.
    EXPECT_EQ(s_ncbi.totals.hits, s_mu.totals.hits) << "query " << q;
    EXPECT_EQ(s_db.totals.hits, s_mu.totals.hits) << "query " << q;
    EXPECT_EQ(s_nopf.totals.hits, s_mu.totals.hits) << "query " << q;

    // Two-hit pairing, HSPs and gapped extensions are pipeline-invariant.
    for (const stats::PipelineSnapshot* s : {&s_ncbi, &s_db, &s_nopf}) {
      EXPECT_EQ(s->totals.hit_pairs, s_mu.totals.hit_pairs) << "query " << q;
      EXPECT_EQ(s->totals.ungapped_alignments,
                s_mu.totals.ungapped_alignments)
          << "query " << q;
      EXPECT_EQ(s->totals.gapped_extensions, s_mu.totals.gapped_extensions)
          << "query " << q;
    }

    // Both database-indexed pipelines extend the same pair set, so the
    // ungapped-extension execution counts match exactly as well. (The
    // pre-filter-off variant differs only in what it sorts.)
    EXPECT_EQ(s_db.totals.extensions, s_mu.totals.extensions) << "query " << q;
    EXPECT_EQ(s_nopf.totals.extensions, s_mu.totals.extensions)
        << "query " << q;
    EXPECT_GE(s_nopf.totals.sorted_records, s_mu.totals.sorted_records)
        << "query " << q;

    EXPECT_DOUBLE_EQ(s_db.survival_ratio(), s_mu.survival_ratio())
        << "query " << q;
  }
}

TEST_P(StatsEquivalence, BatchCountersMatchSingleQueryCounters) {
  const MuBlastpEngine mu(*index_);
  stats::PipelineStats batch_ps;
  (void)mu.search_batch(queries_, 4, &batch_ps);
  const stats::PipelineSnapshot batch = batch_ps.snapshot();

  stats::StageCounters sum;
  for (SeqId q = 0; q < queries_.size(); ++q) {
    sum += snap_of(mu, queries_.sequence(q)).totals;
  }
  EXPECT_EQ(batch.totals, sum);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StatsEquivalence,
    ::testing::Values(CounterCase{911, 60000, 64, 16 * 1024},
                      CounterCase{922, 120000, 128, 64 * 1024}),
    [](const ::testing::TestParamInfo<CounterCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mublastp
