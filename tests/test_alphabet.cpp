#include "common/alphabet.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mublastp {
namespace {

TEST(Alphabet, SizeAndLetters) {
  EXPECT_EQ(kAlphabetSize, 24);
  EXPECT_EQ(kLetters.size(), 24u);
  EXPECT_EQ(kNumWords, 13824);
}

TEST(Alphabet, EncodeDecodeRoundTripAllLetters) {
  for (std::size_t i = 0; i < kLetters.size(); ++i) {
    const char c = kLetters[i];
    const Residue r = encode_residue(c);
    EXPECT_EQ(r, static_cast<Residue>(i)) << "letter " << c;
    EXPECT_EQ(decode_residue(r), c);
  }
}

TEST(Alphabet, LowercaseEncodesLikeUppercase) {
  EXPECT_EQ(encode_residue('a'), encode_residue('A'));
  EXPECT_EQ(encode_residue('w'), encode_residue('W'));
  EXPECT_EQ(encode_residue('v'), encode_residue('V'));
}

TEST(Alphabet, UnknownCharactersMapToX) {
  EXPECT_EQ(encode_residue('J'), kResidueX);
  EXPECT_EQ(encode_residue('O'), kResidueX);
  EXPECT_EQ(encode_residue('7'), kResidueX);
  EXPECT_EQ(encode_residue('-'), kResidueX);
}

TEST(Alphabet, SelenocysteineMapsToCysteine) {
  EXPECT_EQ(encode_residue('U'), encode_residue('C'));
  EXPECT_EQ(encode_residue('u'), encode_residue('C'));
}

TEST(Alphabet, XIsEncodedAtDocumentedIndex) {
  EXPECT_EQ(encode_residue('X'), kResidueX);
  EXPECT_EQ(kLetters[kResidueX], 'X');
}

TEST(Alphabet, EncodeSequenceSkipsWhitespace) {
  const auto seq = encode_sequence("AR ND\nCQ\tEG");
  EXPECT_EQ(seq.size(), 8u);
  EXPECT_EQ(decode_sequence(seq), "ARNDCQEG");
}

TEST(Alphabet, EncodeEmpty) {
  EXPECT_TRUE(encode_sequence("").empty());
}

TEST(Alphabet, StandardResiduePredicate) {
  EXPECT_TRUE(is_standard_residue(encode_residue('A')));
  EXPECT_TRUE(is_standard_residue(encode_residue('V')));
  EXPECT_FALSE(is_standard_residue(encode_residue('B')));
  EXPECT_FALSE(is_standard_residue(encode_residue('Z')));
  EXPECT_FALSE(is_standard_residue(encode_residue('X')));
  EXPECT_FALSE(is_standard_residue(encode_residue('*')));
}

TEST(WordKey, FirstAndLastWords) {
  const Residue aaa[3] = {0, 0, 0};
  EXPECT_EQ(word_key(aaa), 0u);
  const Residue last[3] = {23, 23, 23};
  EXPECT_EQ(word_key(last), static_cast<std::uint32_t>(kNumWords - 1));
}

TEST(WordKey, MatchesPositionalArithmetic) {
  const Residue w[3] = {2, 5, 7};
  EXPECT_EQ(word_key(w), 2u * 576 + 5u * 24 + 7u);
}

TEST(WordKey, UnpackIsInverse) {
  for (std::uint32_t key = 0; key < static_cast<std::uint32_t>(kNumWords);
       key += 97) {
    Residue w[3];
    unpack_word(key, w);
    EXPECT_EQ(word_key(w), key);
  }
}

TEST(WordKey, StringConversions) {
  EXPECT_EQ(word_to_string(0), "AAA");
  EXPECT_EQ(word_from_string("AAA"), 0u);
  const std::uint32_t k = word_from_string("RWV");
  EXPECT_EQ(word_to_string(k), "RWV");
}

TEST(WordKey, StringRoundTripSampled) {
  for (std::uint32_t key = 0; key < static_cast<std::uint32_t>(kNumWords);
       key += 131) {
    EXPECT_EQ(word_from_string(word_to_string(key)), key);
  }
}

TEST(WordKey, RejectsBadInput) {
  EXPECT_THROW(word_to_string(static_cast<std::uint32_t>(kNumWords)), Error);
  EXPECT_THROW(word_from_string("AAAA"), Error);
  EXPECT_THROW(word_from_string("AA"), Error);
}

// Property sweep: every encodable character round-trips through
// encode/decode into a fixed point after one application.
class AlphabetCharSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlphabetCharSweep, DecodeEncodeIsIdempotent) {
  const char c = static_cast<char>(GetParam());
  const Residue r = encode_residue(c);
  ASSERT_LT(r, kAlphabetSize);
  const char canonical = decode_residue(r);
  EXPECT_EQ(encode_residue(canonical), r);
}

INSTANTIATE_TEST_SUITE_P(AllPrintable, AlphabetCharSweep,
                         ::testing::Range(32, 127));

}  // namespace
}  // namespace mublastp
