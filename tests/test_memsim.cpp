#include "memsim/memsim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp::memsim {
namespace {

TEST(Cache, ColdMissThenHit) {
  Cache c({1024, 64, 2});
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x103F));  // same line
  EXPECT_FALSE(c.access(0x1040)); // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, line 64: lines mapping to the same set collide every
  // num_sets*64 bytes. size 1024 / (64*2) = 8 sets.
  Cache c({1024, 64, 2});
  const std::uint64_t a = 0;           // set 0
  const std::uint64_t b = 8 * 64;      // set 0
  const std::uint64_t d = 16 * 64;     // set 0
  EXPECT_FALSE(c.access(a));
  EXPECT_FALSE(c.access(b));
  EXPECT_TRUE(c.access(a));   // refresh a; b is now LRU
  EXPECT_FALSE(c.access(d));  // evicts b
  EXPECT_TRUE(c.access(a));
  EXPECT_FALSE(c.access(b));  // b was evicted
}

TEST(Cache, FullyAssociativeHoldsWholeWorkingSet) {
  Cache c({64 * 16, 64, 16});  // one set, 16 ways
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(c.access(i * 64u));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(c.access(i * 64u));
}

TEST(Cache, FlushDropsContentsKeepsCounters) {
  Cache c({1024, 64, 2});
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
  EXPECT_EQ(c.misses(), 2u);
  c.reset_counters();
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.accesses(), 0u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({1000, 60, 2}), Error);   // non-power-of-two line
  EXPECT_THROW(Cache({1000, 64, 3}), Error);   // size not multiple
  EXPECT_THROW(Cache({1024, 64, 0}), Error);   // zero ways
}

TEST(Hierarchy, SequentialStreamHasLineGranularMisses) {
  MemoryHierarchy h;
  // 64KB sequential byte stream: 1 L1 miss per 64-byte line.
  for (std::uint64_t a = 0; a < 64 * 1024; ++a) h.access(a, 1);
  const MemStats s = h.stats();
  EXPECT_EQ(s.references, 64u * 1024u);
  EXPECT_EQ(s.l1_misses, 1024u);
}

TEST(Hierarchy, WorkingSetInsideL1NeverMissesAfterWarmup) {
  MemoryHierarchy h;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t a = 0; a < 16 * 1024; a += 64) h.access(a, 1);
  }
  h.reset_counters();
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) h.access(a, 1);
  EXPECT_EQ(h.stats().l1_misses, 0u);
}

TEST(Hierarchy, WorkingSetBetweenL1AndL2HitsL2) {
  MemoryHierarchy h;
  // 128KB working set: misses L1 (32KB), fits L2 (256KB).
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t a = 0; a < 128 * 1024; a += 64) h.access(a, 1);
  }
  h.reset_counters();
  for (std::uint64_t a = 0; a < 128 * 1024; a += 64) h.access(a, 1);
  const MemStats s = h.stats();
  EXPECT_GT(s.l1_misses, 1500u);  // streams through L1
  EXPECT_EQ(s.llc_misses, 0u);    // but L2 serves everything
}

TEST(Hierarchy, RandomAccessOverHugeFootprintMissesLlc) {
  MemoryHierarchy h;
  Rng rng(5);
  // 1GB random touches: far beyond 30MB L3.
  for (int i = 0; i < 200000; ++i) {
    h.access(rng.next_below(1ull << 30), 4);
  }
  const MemStats s = h.stats();
  EXPECT_GT(s.llc_miss_rate(), 0.9);
  EXPECT_GT(s.tlb_miss_rate(), 0.5);
}

TEST(Hierarchy, SequentialBeatsRandomOnEveryMetric) {
  const std::size_t kFoot = 8 * 1024 * 1024;  // 8MB
  MemoryHierarchy seq;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::uint64_t a = 0; a < kFoot; a += 8) seq.access(a, 8);
  }
  MemoryHierarchy rnd;
  Rng rng(7);
  const std::size_t touches = 2 * kFoot / 8;
  for (std::size_t i = 0; i < touches; ++i) {
    rnd.access(rng.next_below(kFoot), 8);
  }
  // With an 8MB footprint (fits L3) both patterns pay the same cold LLC
  // misses, but random access thrashes L1/L2 and the TLBs while the
  // sequential stream amortizes one miss per line/page.
  EXPECT_LT(seq.stats().l1_misses, rnd.stats().l1_misses);
  EXPECT_LT(seq.stats().l2_misses, rnd.stats().l2_misses);
  EXPECT_LT(seq.stats().stlb_misses, rnd.stats().stlb_misses);
  EXPECT_LT(seq.stats().stalled_cycle_fraction(),
            rnd.stats().stalled_cycle_fraction());
}

TEST(Hierarchy, MultiByteAccessTouchesEverySpannedLine) {
  MemoryHierarchy h;
  h.access(60, 8);  // spans lines 0 and 1
  EXPECT_EQ(h.stats().references, 2u);
  h.reset_counters();
  h.access(0, 256);  // exactly 4 lines
  EXPECT_EQ(h.stats().references, 4u);
  h.reset_counters();
  h.access(0, 0);  // empty access is a no-op
  EXPECT_EQ(h.stats().references, 0u);
}

TEST(Hierarchy, TlbCoversL1MissesWithinPage) {
  MemoryHierarchy h;
  // Touch 64 lines inside one 4KB page: 1 DTLB miss, 64 L1 misses.
  for (std::uint64_t a = 0; a < 4096; a += 64) h.access(a, 1);
  const MemStats s = h.stats();
  EXPECT_EQ(s.dtlb_misses, 1u);
  EXPECT_EQ(s.l1_misses, 64u);
}

TEST(MemStatsProxy, StalledFractionIsZeroWithoutTraffic) {
  MemStats s;
  EXPECT_EQ(s.stalled_cycle_fraction(), 0.0);
}

TEST(MemStatsProxy, StalledFractionGrowsWithMissRates) {
  MemStats light;
  light.references = 1000000;
  light.l1_misses = 1000;
  MemStats heavy = light;
  heavy.llc_misses = 50000;
  heavy.l2_misses = 100000;
  heavy.l1_misses = 200000;
  EXPECT_GT(heavy.stalled_cycle_fraction(), light.stalled_cycle_fraction());
  EXPECT_LE(heavy.stalled_cycle_fraction(), 1.0);
}

TEST(Prefetcher, SequentialStreamHitsLlcAfterTraining) {
  // With the stream prefetcher, a long sequential scan should mostly HIT in
  // L3 (lines were filled ahead of the demand accesses).
  MemoryHierarchy h;
  for (std::uint64_t a = 0; a < 4 * 1024 * 1024; a += 64) h.access(a, 1);
  const MemStats s = h.stats();
  // L1 still misses once per line (prefetches fill L2/L3 only)...
  EXPECT_GT(s.l1_misses, 60000u);
  // ...but prefetched L2 lines absorb nearly all of them: almost no demand
  // traffic reaches memory (65536 lines touched, cold-start aside).
  EXPECT_LT(s.llc_misses + s.llc_accesses, 2000u);
}

TEST(Prefetcher, DisabledPrefetchRestoresColdMisses) {
  MemoryHierarchy h;
  h.set_prefetch(false);
  for (std::uint64_t a = 0; a < 4 * 1024 * 1024; a += 64) h.access(a, 1);
  EXPECT_GT(h.stats().llc_miss_rate(), 0.9);  // every line is a cold miss
}

TEST(Prefetcher, RandomAccessGainsNothing) {
  MemoryHierarchy with;
  MemoryHierarchy without;
  without.set_prefetch(false);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = rng.next_below(1ull << 30);
    with.access(a, 1);
  }
  rng.reseed(9);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = rng.next_below(1ull << 30);
    without.access(a, 1);
  }
  // No streams to train on: miss rates match within noise.
  EXPECT_NEAR(with.stats().llc_miss_rate(), without.stats().llc_miss_rate(),
              0.02);
}

TEST(Prefetcher, TracksMultipleConcurrentStreams) {
  // Interleave 4 sequential streams: all should be detected (16 slots).
  MemoryHierarchy h;
  const std::uint64_t bases[4] = {0, 1u << 24, 2u << 24, 3u << 24};
  for (std::uint64_t step = 0; step < 16384; ++step) {
    for (const std::uint64_t base : bases) {
      h.access(base + step * 64, 1);
    }
  }
  // 65536 total line touches across the 4 streams; nearly all served from
  // prefetched L2 lines.
  EXPECT_LT(h.stats().llc_misses + h.stats().llc_accesses, 2000u);
}

TEST(CacheFill, InstallsWithoutCountingAndRespectsLru) {
  Cache c({1024, 64, 2});
  c.fill(0);
  EXPECT_EQ(c.accesses(), 0u);  // fills are not demand accesses
  EXPECT_TRUE(c.access(0));     // but the line is resident
  // Filling an already-present line must not disturb recency.
  Cache d({1024, 64, 2});       // 8 sets
  const std::uint64_t a = 0, b = 8 * 64, e = 16 * 64;  // same set
  d.access(a);
  d.access(b);
  d.fill(a);      // no-op on resident line
  d.access(e);    // evicts LRU = a
  EXPECT_TRUE(d.access(b));   // b survived...
  EXPECT_FALSE(d.access(a));  // ...a did not
}

TEST(TracingModel, ForwardsPointerTouches) {
  MemoryHierarchy h;
  TracingMemoryModel mem(h);
  int dummy[64] = {};
  mem.touch(dummy, sizeof(dummy));
  EXPECT_GT(h.stats().references, 0u);
}

TEST(NullModel, CompilesToNothingAndHasNoState) {
  static_assert(!NullMemoryModel::kEnabled);
  NullMemoryModel m;
  m.touch(nullptr, 100);  // must be a safe no-op
  m.touch_addr(0, 100);
}

}  // namespace
}  // namespace mublastp::memsim
