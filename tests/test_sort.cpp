#include "sort/radix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace mublastp {
namespace {

// Key-value record: sorts must be stable in `seq` for equal `key`.
struct Rec {
  std::uint32_t key;
  std::uint32_t seq;
  bool operator==(const Rec&) const = default;
};

using SortFn = void (*)(std::vector<Rec>&, int);

void lsd(std::vector<Rec>& v, int bits) {
  sorting::radix_sort_lsd(v, [](const Rec& r) { return r.key; }, bits);
}
void msd(std::vector<Rec>& v, int bits) {
  sorting::radix_sort_msd(v, [](const Rec& r) { return r.key; }, bits);
}
void mrg(std::vector<Rec>& v, int /*bits*/) {
  sorting::merge_sort(v, [](const Rec& r) { return r.key; });
}

std::vector<Rec> make_random(std::size_t n, std::uint32_t key_range,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rec> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(key_range)),
            static_cast<std::uint32_t>(i)};
  }
  return v;
}

std::vector<Rec> reference_sorted(std::vector<Rec> v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  return v;
}

struct Case {
  const char* name;
  SortFn fn;
};

class StableSorts : public ::testing::TestWithParam<Case> {};

TEST_P(StableSorts, EmptyAndSingle) {
  std::vector<Rec> v;
  GetParam().fn(v, 32);
  EXPECT_TRUE(v.empty());
  v = {{5, 0}};
  GetParam().fn(v, 32);
  EXPECT_EQ(v, (std::vector<Rec>{{5, 0}}));
}

TEST_P(StableSorts, MatchesStdStableSortOnRandomData) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t n : {2u, 10u, 255u, 256u, 1000u, 50000u}) {
      auto v = make_random(n, 1000, seed);
      const auto want = reference_sorted(v);
      GetParam().fn(v, 32);
      EXPECT_EQ(v, want) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST_P(StableSorts, StabilityWithFewDistinctKeys) {
  // Many duplicates: stability is the load-bearing property for hit
  // reordering (query offsets must stay ordered within a diagonal).
  auto v = make_random(20000, 7, 99);
  const auto want = reference_sorted(v);
  GetParam().fn(v, 8);
  EXPECT_EQ(v, want);
}

TEST_P(StableSorts, AlreadySorted) {
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 5000; ++i) v.push_back({i, i});
  const auto want = v;
  GetParam().fn(v, 32);
  EXPECT_EQ(v, want);
}

TEST_P(StableSorts, ReverseSorted) {
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 5000; ++i) v.push_back({5000 - i, i});
  const auto want = reference_sorted(v);
  GetParam().fn(v, 32);
  EXPECT_EQ(v, want);
}

TEST_P(StableSorts, AllEqualKeysKeepInputOrder) {
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back({42, i});
  const auto want = v;
  GetParam().fn(v, 32);
  EXPECT_EQ(v, want);
}

TEST_P(StableSorts, FullKeyRangeIncludingExtremes) {
  std::vector<Rec> v = {{~0u, 0}, {0, 1}, {1u << 31, 2}, {~0u, 3}, {0, 4}};
  const auto want = reference_sorted(v);
  GetParam().fn(v, 32);
  EXPECT_EQ(v, want);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, StableSorts,
    ::testing::Values(Case{"lsd", &lsd}, Case{"msd", &msd},
                      Case{"merge", &mrg}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(RadixLsd, NarrowKeyBitsSkipHighPasses) {
  // With key_bits = 16 and keys < 2^16 the result must still be correct.
  auto v = make_random(10000, 1u << 16, 7);
  const auto want = reference_sorted(v);
  sorting::radix_sort_lsd(v, [](const Rec& r) { return r.key; }, 16);
  EXPECT_EQ(v, want);
}

TEST(RadixLsd, SupportsSixtyFourBitKeys) {
  Rng rng(11);
  struct R64 {
    std::uint64_t key;
    std::uint32_t seq;
    bool operator==(const R64&) const = default;
  };
  std::vector<R64> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = {rng.next_u64(), static_cast<std::uint32_t>(i)};
  }
  auto want = v;
  std::stable_sort(want.begin(), want.end(),
                   [](const R64& a, const R64& b) { return a.key < b.key; });
  sorting::radix_sort_lsd(v, [](const R64& r) { return r.key; });
  EXPECT_EQ(v, want);
}

TEST(RadixMsd, InsertionFallbackBoundary) {
  // Sizes straddling the insertion-sort threshold (32).
  for (const std::size_t n : {31u, 32u, 33u, 64u}) {
    auto v = make_random(n, 50, 13);
    const auto want = reference_sorted(v);
    sorting::radix_sort_msd(v, [](const Rec& r) { return r.key; }, 32);
    EXPECT_EQ(v, want) << "n=" << n;
  }
}


struct BinRec {
  std::uint32_t seq;
  std::uint32_t diag;
  std::uint32_t order;
  bool operator==(const BinRec&) const = default;
};

std::vector<BinRec> make_bin_records(std::size_t n, std::uint32_t seqs,
                                     std::uint32_t diags, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BinRec> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(seqs)),
            static_cast<std::uint32_t>(rng.next_below(diags)),
            static_cast<std::uint32_t>(i)};
  }
  return v;
}

TEST(TwoLevelBin, MatchesStableSortBySeqThenDiag) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto v = make_bin_records(20000, 128, 512, seed);
    auto want = v;
    std::stable_sort(want.begin(), want.end(),
                     [](const BinRec& a, const BinRec& b) {
                       if (a.seq != b.seq) return a.seq < b.seq;
                       return a.diag < b.diag;
                     });
    sorting::two_level_bin(
        v, [](const BinRec& r) { return r.diag; }, 512,
        [](const BinRec& r) { return r.seq; }, 128);
    EXPECT_EQ(v, want) << "seed " << seed;
  }
}

TEST(TwoLevelBin, PreservesArrivalOrderWithinDiagonal) {
  // All records in one (seq, diag) cell: order field must stay ascending.
  std::vector<BinRec> v;
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back({3, 7, i});
  sorting::two_level_bin(
      v, [](const BinRec& r) { return r.diag; }, 16,
      [](const BinRec& r) { return r.seq; }, 8);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i].order, i);
}

TEST(TwoLevelBin, EmptyAndSingle) {
  std::vector<BinRec> v;
  sorting::two_level_bin(
      v, [](const BinRec& r) { return r.diag; }, 4,
      [](const BinRec& r) { return r.seq; }, 4);
  EXPECT_TRUE(v.empty());
  v = {{1, 2, 0}};
  sorting::two_level_bin(
      v, [](const BinRec& r) { return r.diag; }, 4,
      [](const BinRec& r) { return r.seq; }, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].order, 0u);
}

}  // namespace
}  // namespace mublastp
