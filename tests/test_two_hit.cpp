#include "core/two_hit.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hit_logic.hpp"

namespace mublastp {
namespace {

TEST(DiagState, FreshKeysReportNone) {
  DiagState s;
  s.resize(10);
  s.new_round(1000);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(s.last_hit(k), DiagState::kNone);
    EXPECT_EQ(s.ext_reached(k), DiagState::kNone);
  }
}

TEST(DiagState, SetAndGet) {
  DiagState s;
  s.resize(4);
  s.new_round(1000);
  s.set_last_hit(2, 17);
  s.set_ext_reached(2, 25);
  EXPECT_EQ(s.last_hit(2), 17);
  EXPECT_EQ(s.ext_reached(2), 25);
  EXPECT_EQ(s.last_hit(1), DiagState::kNone);
}

TEST(DiagState, NewRoundInvalidatesInConstantTime) {
  DiagState s;
  s.resize(100);
  s.new_round(1000);
  for (std::size_t k = 0; k < 100; ++k) s.set_last_hit(k, 5);
  s.new_round(1000);
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_EQ(s.last_hit(k), DiagState::kNone);
  }
}

TEST(DiagState, SettingOneFieldResetsStaleOther) {
  DiagState s;
  s.resize(2);
  s.new_round(1000);
  s.set_ext_reached(0, 99);
  s.new_round(1000);
  s.set_last_hit(0, 3);  // same slot, new round
  EXPECT_EQ(s.ext_reached(0), DiagState::kNone);
  EXPECT_EQ(s.last_hit(0), 3);
}

TEST(DiagState, ResizeKeepsCapacityMonotonic) {
  DiagState s;
  s.resize(10);
  s.resize(5);
  EXPECT_GE(s.capacity(), 10u);
  s.resize(20);
  EXPECT_GE(s.capacity(), 20u);
  EXPECT_GT(s.footprint_bytes(), 0u);
}

TEST(DiagState, SurvivesManyRounds) {
  DiagState s;
  s.resize(3);
  for (int round = 0; round < 100000; ++round) {
    s.new_round(1000);
    EXPECT_EQ(s.last_hit(1), DiagState::kNone);
    const std::int32_t v = round % 1000;  // contract: values < stride
    s.set_last_hit(1, v);
    EXPECT_EQ(s.last_hit(1), v);
  }
}

TEST(DiagState, SurvivesStampOverflowClear) {
  // Large strides force the periodic physical clear; entries must still be
  // invalidated across it.
  DiagState s;
  s.resize(2);
  constexpr std::int32_t kBig = 1 << 20;
  for (int round = 0; round < 3000; ++round) {
    s.new_round(kBig);
    EXPECT_EQ(s.last_hit(0), DiagState::kNone) << round;
    EXPECT_EQ(s.ext_reached(0), DiagState::kNone) << round;
    s.set_last_hit(0, kBig - 1);
    s.set_ext_reached(0, kBig - 1);
    EXPECT_EQ(s.last_hit(0), kBig - 1);
  }
}

// process_hit scenario tests on a fixed synthetic diagonal.
class ProcessHit : public ::testing::Test {
 protected:
  void SetUp() override {
    // Identical 60-residue sequences: every extension spans everything with
    // a high score, so behaviour is driven purely by the pairing logic.
    Rng rng(3);
    q_.resize(60);
    for (auto& r : q_) r = static_cast<Residue>(rng.next_below(20));
    s_ = q_;
    state_.resize(200);
    state_.new_round(1000);
    params_.two_hit_window = 40;
    params_.ungapped_cutoff = 10;
  }

  void hit(std::uint32_t qoff) {
    // Same diagonal (key 7): soff == qoff.
    process_hit(state_, 7, std::span<const Residue>(q_),
                std::span<const Residue>(s_), qoff, qoff, blosum62(), params_,
                stats_, segs_);
  }

  std::vector<Residue> q_, s_;
  DiagState state_;
  SearchParams params_;
  StageStats stats_;
  std::vector<UngappedSeg> segs_;
};

TEST_F(ProcessHit, FirstHitNeverPairs) {
  hit(10);
  EXPECT_EQ(stats_.hits, 1u);
  EXPECT_EQ(stats_.hit_pairs, 0u);
  EXPECT_TRUE(segs_.empty());
}

TEST_F(ProcessHit, SecondHitWithinWindowTriggersExtension) {
  hit(10);
  hit(20);
  EXPECT_EQ(stats_.hit_pairs, 1u);
  EXPECT_EQ(stats_.extensions, 1u);
  ASSERT_EQ(segs_.size(), 1u);
  // Identical sequences: extension spans everything.
  EXPECT_EQ(segs_[0].q_start, 0u);
  EXPECT_EQ(segs_[0].q_end, 60u);
}

TEST_F(ProcessHit, HitOutsideWindowDoesNotPair) {
  hit(0);
  hit(45);  // distance 45 >= window 40
  EXPECT_EQ(stats_.hit_pairs, 0u);
  hit(50);  // distance 5 from the *updated* last hit: pairs
  EXPECT_EQ(stats_.hit_pairs, 1u);
}

TEST_F(ProcessHit, ExactWindowBoundaryIsExclusive) {
  hit(0);
  hit(40);  // distance == window: not a pair (strict <)
  EXPECT_EQ(stats_.hit_pairs, 0u);
  state_.new_round(1000);
  stats_ = {};
  hit(0);
  hit(39);  // distance 39 < 40: pair
  EXPECT_EQ(stats_.hit_pairs, 1u);
}

TEST_F(ProcessHit, CoveredHitSkipsExtension) {
  hit(5);
  hit(10);  // extension spans [0, 60): ext_reached = 60
  EXPECT_EQ(stats_.extensions, 1u);
  hit(20);  // pairs (distance 10) but 20 < 60 -> covered, no extension
  EXPECT_EQ(stats_.hit_pairs, 2u);
  EXPECT_EQ(stats_.extensions, 1u);
  EXPECT_EQ(segs_.size(), 1u);
}

TEST_F(ProcessHit, FailedExtensionDoesNotRecordSegment) {
  // Use disjoint sequences: extensions score ~negative, below cutoff.
  for (auto& r : s_) r = encode_residue('P');
  for (auto& r : q_) r = encode_residue('W');
  params_.ungapped_cutoff = 100;
  hit(10);
  hit(15);
  EXPECT_EQ(stats_.extensions, 1u);
  EXPECT_TRUE(segs_.empty());
  EXPECT_EQ(stats_.ungapped_alignments, 0u);
}

TEST_F(ProcessHit, OverlappingHitsAreIgnored) {
  hit(10);
  hit(11);  // distance 1 < W: ignored, does not even advance last_hit
  hit(12);  // distance 2 from 10: still ignored
  EXPECT_EQ(stats_.hit_pairs, 0u);
  hit(13);  // distance 3 from 10: pairs
  EXPECT_EQ(stats_.hit_pairs, 1u);
  EXPECT_EQ(stats_.hits, 4u);
}

TEST_F(ProcessHit, RunOfConsecutiveHitsYieldsOnePair) {
  // A perfect-similarity run: overlap exclusion + coverage leave exactly
  // one extension for the whole run.
  for (std::uint32_t q = 0; q < 30; ++q) hit(q);
  EXPECT_EQ(stats_.extensions, 1u);
  EXPECT_EQ(segs_.size(), 1u);
}

TEST_F(ProcessHit, DifferentDiagonalsDoNotInteract) {
  process_hit(state_, 1, std::span<const Residue>(q_),
              std::span<const Residue>(s_), 10, 10, blosum62(), params_,
              stats_, segs_);
  process_hit(state_, 2, std::span<const Residue>(q_),
              std::span<const Residue>(s_), 12, 12, blosum62(), params_,
              stats_, segs_);
  EXPECT_EQ(stats_.hit_pairs, 0u);
}

}  // namespace
}  // namespace mublastp
