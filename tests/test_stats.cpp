// Telemetry subsystem (src/stats): deterministic counters under OpenMP,
// a hand-counted toy workload, survival ratio, and JSON round-tripping.
#include <gtest/gtest.h>

#include <cstdint>

#include "baseline/query_engine.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

static_assert(!stats::NullStats::kEnabled);
static_assert(!stats::NullStats::Recorder::kEnabled);
static_assert(stats::PipelineStats::kEnabled);

class StatsPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = synth::generate_database(synth::sprot_like(120000), 811);
    Rng rng(812);
    queries_ = synth::sample_queries(db_, 8, 128, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = 32 * 1024;  // several blocks, so per_block is exercised
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }

  stats::PipelineSnapshot run_batch(int threads) {
    const MuBlastpEngine mu(*index_);
    stats::PipelineStats ps;
    results_ = mu.search_batch(queries_, threads, &ps);
    return ps.snapshot();
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
  std::vector<QueryResult> results_;
};

// The acceptance property of the subsystem: per-thread accumulators merged
// at the serial block barrier make every counter bit-identical regardless
// of the OpenMP thread count or schedule.
TEST_F(StatsPipeline, CountersIdenticalAcrossThreadCounts) {
  const stats::PipelineSnapshot s1 = run_batch(1);
  const stats::PipelineSnapshot s2 = run_batch(2);
  const stats::PipelineSnapshot s8 = run_batch(8);

  EXPECT_GT(s1.totals.hits, 0u);
  for (const stats::PipelineSnapshot* s : {&s2, &s8}) {
    EXPECT_EQ(s1.totals, s->totals);
    EXPECT_EQ(s1.queries, s->queries);
    EXPECT_DOUBLE_EQ(s1.survival_ratio(), s->survival_ratio());
    ASSERT_EQ(s1.per_block.size(), s->per_block.size());
    for (std::size_t b = 0; b < s1.per_block.size(); ++b) {
      EXPECT_EQ(s1.per_block[b].block, s->per_block[b].block);
      EXPECT_EQ(s1.per_block[b].rounds, s->per_block[b].rounds);
      EXPECT_EQ(s1.per_block[b].counters, s->per_block[b].counters);
    }
  }
  EXPECT_EQ(s8.threads, 8);
}

// The run totals are exactly the sum of the per-query StageStats the
// engines have always maintained — the recorder adds no counting of its
// own, it only aggregates the existing per-query deltas.
TEST_F(StatsPipeline, TotalsEqualSumOfPerQueryStats) {
  const stats::PipelineSnapshot snap = run_batch(4);
  stats::StageCounters sum;
  for (const QueryResult& r : results_) sum += stats::counters_of(r.stats);
  EXPECT_EQ(snap.totals, sum);
  EXPECT_EQ(snap.queries, results_.size());
}

TEST_F(StatsPipeline, SingleQuerySearchRecordsEverything) {
  const MuBlastpEngine mu(*index_);
  stats::PipelineStats ps;
  const QueryResult r = mu.search(queries_.sequence(0), ps);
  const stats::PipelineSnapshot snap = ps.snapshot();
  EXPECT_EQ(snap.totals, stats::counters_of(r.stats));
  EXPECT_EQ(snap.queries, 1u);
  EXPECT_EQ(snap.per_block.size(), index_->blocks().size());
  EXPECT_GT(snap.total_seconds, 0.0);
}

// Figure 6's claim on a realistic workload: the pre-filter keeps well under
// 10% of stage-1 hits (the paper reports <5% on real databases).
TEST_F(StatsPipeline, SurvivalRatioBelowTenPercent) {
  const stats::PipelineSnapshot snap = run_batch(2);
  ASSERT_GT(snap.totals.hits, 0u);
  EXPECT_GT(snap.survival_ratio(), 0.0);
  EXPECT_LT(snap.survival_ratio(), 0.10);
}

// Hand-counted toy case. Query and the single subject are both homopolymer
// 'A' runs: the only BLOSUM62 neighbor of word AAA at T=11 is AAA itself
// (self score 3*4=12; the closest other word scores 9), so every query word
// hits every subject word:    hits = (Lq-2) * (Ls-2).
// On a diagonal with n consecutive hits the two-hit automaton ignores
// overlapping hits (distance < 3) and fires a pair on every third hit:
//                            pairs = floor((n-1)/3).
// A pair's extension spans the diagonal's whole overlap (every column
// scores +4, x-drop never triggers), scoring 4*(n+2): diagonals with
// n >= 8 reach the ungapped cutoff of 38, so their first extension succeeds
// and covers all later pairs (1 extension, 1 HSP); shorter diagonals fail
// every time (extensions = pairs, 0 HSPs).
TEST(StatsHandCount, HomopolymerMatchesClosedForm) {
  constexpr std::int64_t kQueryLen = 24;
  constexpr std::int64_t kSubjectLen = 30;
  const std::vector<Residue> query(kQueryLen, encode_residue('A'));
  SequenceStore db;
  db.add(std::vector<Residue>(kSubjectLen, encode_residue('A')), "polyA");

  std::uint64_t hits = 0, pairs = 0, extensions = 0, hsps = 0;
  for (std::int64_t d = -(kQueryLen - 3); d <= kSubjectLen - 3; ++d) {
    // Hits on diagonal d: query offsets with both words in range.
    const std::int64_t lo = std::max<std::int64_t>(0, -d);
    const std::int64_t hi = std::min(kQueryLen - 3, kSubjectLen - 3 - d);
    if (hi < lo) continue;
    const std::uint64_t n = static_cast<std::uint64_t>(hi - lo + 1);
    hits += n;
    if (n < 4) continue;  // a pair needs two hits >= 3 apart
    const std::uint64_t p = (n - 1) / 3;
    pairs += p;
    if (4 * (n + 2) >= 38) {
      extensions += 1;
      hsps += 1;
    } else {
      extensions += p;
    }
  }

  const DbIndex index = DbIndex::build(db, {});
  const MuBlastpEngine mu(index);
  stats::PipelineStats ps_mu;
  (void)mu.search(query, ps_mu);
  const stats::PipelineSnapshot mu_snap = ps_mu.snapshot();

  EXPECT_EQ(mu_snap.totals.hits, hits);
  EXPECT_EQ(mu_snap.totals.hit_pairs, pairs);
  EXPECT_EQ(mu_snap.totals.extensions, extensions);
  EXPECT_EQ(mu_snap.totals.ungapped_alignments, hsps);
  EXPECT_DOUBLE_EQ(mu_snap.survival_ratio(),
                   static_cast<double>(pairs) / static_cast<double>(hits));

  // The query-indexed baseline runs the same automaton in the other scan
  // order and must land on the same hand count.
  const QueryIndexedEngine ncbi(db);
  stats::PipelineStats ps_q;
  (void)ncbi.search(query, ps_q);
  EXPECT_EQ(ps_q.snapshot().totals.hits, hits);
  EXPECT_EQ(ps_q.snapshot().totals.hit_pairs, pairs);
  EXPECT_EQ(ps_q.snapshot().totals.extensions, extensions);
  EXPECT_EQ(ps_q.snapshot().totals.ungapped_alignments, hsps);
}

TEST_F(StatsPipeline, JsonRoundTripsExactly) {
  const stats::PipelineSnapshot snap = run_batch(2);
  const std::string json = stats::to_json(snap);
  const stats::PipelineSnapshot back = stats::from_json(json);

  EXPECT_EQ(back.engine, snap.engine);
  EXPECT_EQ(back.threads, snap.threads);
  EXPECT_EQ(back.queries, snap.queries);
  EXPECT_EQ(back.totals, snap.totals);
  // Doubles are serialized with round-trip precision: exact equality.
  EXPECT_EQ(back.total_seconds, snap.total_seconds);
  for (int s = 0; s < stats::kNumStages; ++s) {
    EXPECT_EQ(back.stage_seconds[s], snap.stage_seconds[s]);
  }
  ASSERT_EQ(back.per_block.size(), snap.per_block.size());
  for (std::size_t b = 0; b < snap.per_block.size(); ++b) {
    EXPECT_EQ(back.per_block[b].block, snap.per_block[b].block);
    EXPECT_EQ(back.per_block[b].rounds, snap.per_block[b].rounds);
    EXPECT_EQ(back.per_block[b].counters, snap.per_block[b].counters);
    for (int s = 0; s < stats::kNumStages; ++s) {
      EXPECT_EQ(back.per_block[b].seconds[s], snap.per_block[b].seconds[s]);
    }
  }
  // Idempotence: re-serializing the parsed snapshot is byte-identical.
  EXPECT_EQ(stats::to_json(back), json);
}

TEST(StatsJson, RejectsMalformedInput) {
  EXPECT_THROW(stats::from_json(""), Error);
  EXPECT_THROW(stats::from_json("{"), Error);
  EXPECT_THROW(stats::from_json("[]"), Error);
  EXPECT_THROW(stats::from_json("{\"schema\": \"other-v9\"}"), Error);
  stats::PipelineStats ps;
  ps.begin_run(1, 1, 0);
  ps.finish_run(0.0);
  const std::string good = stats::to_json(ps.snapshot());
  EXPECT_NO_THROW(stats::from_json(good));
  EXPECT_THROW(stats::from_json(good + "trailing"), Error);
}

TEST(StatsCounters, SurvivalRatioGuardsDivideByZero) {
  stats::StageCounters c;
  EXPECT_EQ(c.survival_ratio(), 0.0);
  c.hits = 200;
  c.hit_pairs = 10;
  EXPECT_DOUBLE_EQ(c.survival_ratio(), 0.05);
}

}  // namespace
}  // namespace mublastp
