#include "core/results.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/gapped.hpp"
#include "score/karlin.hpp"

namespace mublastp {
namespace {

UngappedAlignment seg(SeqId subj, std::uint32_t qs, std::uint32_t qe,
                      std::uint32_t ss, Score score) {
  return {subj, qs, qe, ss, ss + (qe - qs), score};
}

TEST(CanonicalizeUngapped, SortsBySubjectDiagQstart) {
  std::vector<UngappedAlignment> v{
      seg(1, 10, 20, 15, 50),
      seg(0, 5, 9, 5, 40),
      seg(1, 2, 8, 7, 30),   // diag 5, before diag 5's qstart 10
      seg(0, 0, 4, 9, 20),   // subject 0 diag 9 after diag 0
  };
  canonicalize_ungapped(v);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].subject, 0u);
  EXPECT_EQ(v[0].q_start, 5u);  // diag 0 first
  EXPECT_EQ(v[1].subject, 0u);
  EXPECT_EQ(v[1].q_start, 0u);  // diag 9
  EXPECT_EQ(v[2].subject, 1u);
  EXPECT_EQ(v[2].q_start, 2u);  // diag 5, earlier qstart first
  EXPECT_EQ(v[3].q_start, 10u);
}

TEST(CanonicalizeUngapped, RemovesExactDuplicates) {
  std::vector<UngappedAlignment> v{
      seg(0, 5, 9, 5, 40), seg(0, 5, 9, 5, 40), seg(0, 5, 9, 5, 40)};
  canonicalize_ungapped(v);
  EXPECT_EQ(v.size(), 1u);
}

TEST(CanonicalizeUngapped, KeepsNearDuplicates) {
  std::vector<UngappedAlignment> v{seg(0, 5, 9, 5, 40), seg(0, 5, 9, 5, 41)};
  canonicalize_ungapped(v);
  EXPECT_EQ(v.size(), 2u);
}

class StageFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    query_.resize(100);
    for (auto& r : query_) r = static_cast<Residue>(rng.next_below(20));
    // Two subjects: one a mutated copy (strong alignment), one random.
    subjects_.push_back(query_);
    for (int k = 0; k < 8; ++k) {
      subjects_[0][rng.next_below(100)] =
          static_cast<Residue>(rng.next_below(20));
    }
    subjects_.push_back(std::vector<Residue>(120));
    for (auto& r : subjects_[1]) r = static_cast<Residue>(rng.next_below(20));
    lookup_ = [this](SeqId id) {
      return std::span<const Residue>(subjects_[id]);
    };
    karlin_ = gapped_params(blosum62(), 11, 1);
  }

  std::vector<Residue> query_;
  std::vector<std::vector<Residue>> subjects_;
  SubjectLookup lookup_;
  SearchParams params_;
  KarlinParams karlin_;
};

TEST_F(StageFixture, GappedStageExtendsStrongSeed) {
  std::vector<UngappedAlignment> u{seg(0, 40, 60, 40, 80)};
  StageStats stats;
  const auto gapped =
      gapped_stage(query_, lookup_, u, blosum62(), params_, &stats);
  ASSERT_EQ(gapped.size(), 1u);
  EXPECT_GE(gapped[0].score, params_.gapped_cutoff);
  EXPECT_EQ(stats.gapped_extensions, 1u);
  // The gapped alignment covers most of the (near-identical) query.
  EXPECT_LT(gapped[0].q_start, 10u);
  EXPECT_GT(gapped[0].q_end, 90u);
}

TEST_F(StageFixture, GappedStageSkipsContainedSeeds) {
  // Two seeds on the same subject, the second inside the region the first
  // alignment will cover: only one gapped extension runs.
  std::vector<UngappedAlignment> u{seg(0, 40, 60, 40, 80),
                                   seg(0, 45, 55, 45, 30)};
  StageStats stats;
  const auto gapped =
      gapped_stage(query_, lookup_, u, blosum62(), params_, &stats);
  EXPECT_EQ(gapped.size(), 1u);
  EXPECT_EQ(stats.gapped_extensions, 1u);
}

TEST_F(StageFixture, GappedStageDropsBelowCutoff) {
  // A weak seed on the random subject: its gapped score stays small.
  std::vector<UngappedAlignment> u{seg(1, 10, 16, 20, 18)};
  SearchParams strict = params_;
  strict.gapped_cutoff = 500;
  StageStats stats;
  const auto gapped =
      gapped_stage(query_, lookup_, u, blosum62(), strict, &stats);
  EXPECT_TRUE(gapped.empty());
}

TEST_F(StageFixture, FinalizeAttachesTracebackAndStats) {
  std::vector<UngappedAlignment> u{seg(0, 40, 60, 40, 80)};
  auto gapped = gapped_stage(query_, lookup_, u, blosum62(), params_, nullptr);
  const auto final_alns = finalize_stage(query_, lookup_, std::move(gapped),
                                         blosum62(), params_, karlin_,
                                         1000000);
  ASSERT_EQ(final_alns.size(), 1u);
  const GappedAlignment& a = final_alns[0];
  EXPECT_FALSE(a.ops.empty());
  EXPECT_GT(a.bit_score, 0.0);
  EXPECT_GE(a.evalue, 0.0);
  EXPECT_EQ(score_of_transcript(query_, subjects_[0], a, blosum62(), 11, 1),
            a.score);
}

TEST_F(StageFixture, FinalizeCullsContainedAlignments) {
  // Two genuine alignments on the homologous subject from different
  // anchors: both converge to (essentially) the same region, so culling
  // must keep exactly one.
  GappedAlignment a = gapped_align_at_anchor(
      query_, subjects_[0], 45, 45, blosum62(), params_, false);
  a.subject = 0;
  GappedAlignment b = gapped_align_at_anchor(
      query_, subjects_[0], 30, 30, blosum62(), params_, false);
  b.subject = 0;
  const auto out = finalize_stage(query_, lookup_, {a, b}, blosum62(),
                                  params_, karlin_, 1000000);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(StageFixture, FinalizeRespectsMaxAlignments) {
  // Three homologous subjects, three genuine alignments, cap at 2.
  std::vector<GappedAlignment> g;
  std::vector<std::vector<Residue>> subs;
  Rng rng(9);
  for (int k = 0; k < 3; ++k) {
    auto s = query_;
    for (int j = 0; j < 4 + k; ++j) {
      s[rng.next_below(s.size())] = static_cast<Residue>(rng.next_below(20));
    }
    subs.push_back(std::move(s));
  }
  const SubjectLookup lookup = [&subs](SeqId id) {
    return std::span<const Residue>(subs[id]);
  };
  for (SeqId k = 0; k < 3; ++k) {
    GappedAlignment a = gapped_align_at_anchor(query_, subs[k], 50, 50,
                                               blosum62(), params_, false);
    a.subject = k;
    g.push_back(a);
  }
  SearchParams limited = params_;
  limited.max_alignments = 2;
  const auto out = finalize_stage(query_, lookup, std::move(g), blosum62(),
                                  limited, karlin_, 1000000);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_GE(out[0].score, out[1].score);
}

}  // namespace
}  // namespace mublastp
