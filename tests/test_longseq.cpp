// Long-sequence splitting with overlapped boundaries + assembly (paper
// Section IV-A): results with splitting enabled must match results against
// the same database indexed without splitting.
#include <gtest/gtest.h>

#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

// A database with a few very long sequences carrying planted copies of the
// query region, plus background noise.
struct LongSeqFixtureData {
  SequenceStore db;
  std::vector<Residue> query;
};

LongSeqFixtureData make_fixture(std::uint64_t seed) {
  Rng rng(seed);
  LongSeqFixtureData out;
  out.query.resize(200);
  for (auto& r : out.query) r = static_cast<Residue>(rng.next_below(20));

  for (int s = 0; s < 3; ++s) {
    std::vector<Residue> longseq(9000 + 2000 * s);
    for (auto& r : longseq) r = static_cast<Residue>(rng.next_below(20));
    // Plant mutated copies of the query at several positions, including
    // ones that straddle the fragment cut points for limit 4096.
    for (const std::size_t pos :
         {std::size_t{100}, std::size_t{3996}, std::size_t{8000}}) {
      if (pos + out.query.size() >= longseq.size()) continue;
      for (std::size_t i = 0; i < out.query.size(); ++i) {
        longseq[pos + i] = (rng.next_double() < 0.15)
                               ? static_cast<Residue>(rng.next_below(20))
                               : out.query[i];
      }
    }
    out.db.add(longseq, "long" + std::to_string(s));
  }
  for (int s = 0; s < 20; ++s) {
    std::vector<Residue> shortseq(100 + rng.next_below(400));
    for (auto& r : shortseq) r = static_cast<Residue>(rng.next_below(20));
    out.db.add(shortseq, "short" + std::to_string(s));
  }
  return out;
}

class LongSeq : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LongSeq, SplitIndexFindsSameAlignmentsAsUnsplit) {
  const LongSeqFixtureData f = make_fixture(GetParam());

  DbIndexConfig split_cfg;
  split_cfg.block_bytes = 64 * 1024;
  split_cfg.long_seq_limit = 4096;
  split_cfg.long_seq_overlap = 256;
  const DbIndex split_index = DbIndex::build(f.db, split_cfg);

  DbIndexConfig whole_cfg;
  whole_cfg.block_bytes = 64 * 1024;
  whole_cfg.long_seq_limit = 1 << 20;  // no splitting
  const DbIndex whole_index = DbIndex::build(f.db, whole_cfg);

  // Confirm the split actually happened.
  std::size_t split_frags = 0;
  for (const auto& b : split_index.blocks()) split_frags += b.fragments().size();
  std::size_t whole_frags = 0;
  for (const auto& b : whole_index.blocks()) whole_frags += b.fragments().size();
  ASSERT_GT(split_frags, whole_frags);

  const MuBlastpEngine split_engine(split_index);
  const MuBlastpEngine whole_engine(whole_index);
  const QueryResult a = split_engine.search(f.query);
  const QueryResult b = whole_engine.search(f.query);

  // Final alignments must agree exactly (assembly re-extends across cuts
  // and canonicalization removes the overlap duplicates).
  ASSERT_EQ(a.alignments.size(), b.alignments.size());
  for (std::size_t i = 0; i < a.alignments.size(); ++i) {
    EXPECT_EQ(a.alignments[i].subject, b.alignments[i].subject) << i;
    EXPECT_EQ(a.alignments[i].score, b.alignments[i].score) << i;
    EXPECT_EQ(a.alignments[i].q_start, b.alignments[i].q_start) << i;
    EXPECT_EQ(a.alignments[i].s_start, b.alignments[i].s_start) << i;
    EXPECT_EQ(a.alignments[i].ops, b.alignments[i].ops) << i;
  }
  // And the planted homologies are found.
  EXPECT_GE(a.alignments.size(), 3u);
}

TEST_P(LongSeq, PlantedRegionsAtCutPointsAreFound) {
  const LongSeqFixtureData f = make_fixture(GetParam());
  DbIndexConfig cfg;
  cfg.long_seq_limit = 4096;
  cfg.long_seq_overlap = 256;
  const DbIndex index = DbIndex::build(f.db, cfg);
  const MuBlastpEngine engine(index);
  const QueryResult r = engine.search(f.query);

  // The copy planted at 3996 straddles the first cut (4096); the assembly
  // path must still produce an alignment covering it on some long subject.
  bool found_straddler = false;
  for (const GappedAlignment& a : r.alignments) {
    if (f.db.name(a.subject).starts_with("long") && a.s_start < 4090 &&
        a.s_end > 4100) {
      found_straddler = true;
      break;
    }
  }
  EXPECT_TRUE(found_straddler);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongSeq, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace mublastp
