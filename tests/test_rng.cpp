#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace mublastp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  // Each bucket expects 10000; allow 5% deviation (many sigma).
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.05);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and terminate
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Rng, NoShortCycles) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(rng.next_u64()).second) << "repeat at " << i;
  }
}

}  // namespace
}  // namespace mublastp
