// Differential-fuzz campaign for the query-specialized hit-detection
// kernels (hit_scan_prefilter / hit_scan_collect): every vector path must
// match the engines' classic per-entry two-hit automaton exactly — the
// same paired records in the same order, the same pair count, and the same
// raw last-hit array contents after every scan — across randomized posting
// scans spanning the fragile regimes: fragment/query length classes,
// word-frequency skew (posting lists far longer than one kernel chunk),
// sub-lane tails, repeated scans of one diagonal range, multiple
// new_round epochs, and two-hit threshold edges (window at/under the
// overlap bound, delta exactly at each boundary). Plus engine-level tests
// proving both engines produce bit-identical results and counters with the
// flattened-lookup path on, and that the hit_kernel telemetry is booked.
//
// Vector paths only run where the CPU supports them; the fuzz suite keeps
// the scalar-dispatch coverage (reduced, still green) on scalar-only hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baseline/interleaved_engine.hpp"
#include "common/rng.hpp"
#include "core/hit_record.hpp"
#include "core/mublastp_engine.hpp"
#include "core/two_hit.hpp"
#include "index/db_index.hpp"
#include "index/flat_lookup.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

std::vector<simd::KernelPath> vector_paths() {
  std::vector<simd::KernelPath> paths;
  for (const simd::KernelPath p :
       {simd::KernelPath::kSse42, simd::KernelPath::kAvx2}) {
    if (simd::kernel_supported(p)) paths.push_back(p);
  }
  return paths;
}

// Scalar dispatch is always exercised alongside the vector paths: it must
// agree with the reference too (it shares no code with the classic loop's
// DiagState accessors).
std::vector<simd::KernelPath> all_paths() {
  std::vector<simd::KernelPath> paths{simd::KernelPath::kScalar};
  for (const simd::KernelPath p : vector_paths()) paths.push_back(p);
  return paths;
}

// The engines' original per-entry automaton (mublastp_engine.cpp's classic
// prefilter branch), replicated through the DiagState public API only — an
// independent oracle for the raw-representation kernels.
std::size_t ref_prefilter(const simd::HitScan& scan, DiagState& state,
                          std::int32_t min, std::int32_t window,
                          std::vector<HitRecord>& out) {
  const std::uint32_t mask = (1u << scan.offset_bits) - 1u;
  const std::int32_t q = static_cast<std::int32_t>(scan.qoff);
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < scan.count; ++i) {
    const std::uint32_t e = scan.entries[i];
    const std::uint32_t key =
        scan.bases[e >> scan.offset_bits] + (e & mask) + scan.key_add;
    const std::int32_t last = state.last_hit(key);
    if (last != DiagState::kNone && q - last < min) continue;  // overlap
    const bool paired = last != DiagState::kNone && q - last < window;
    state.set_last_hit(key, q);
    if (!paired) continue;
    out.push_back({key, scan.qoff});
    ++cnt;
  }
  return cnt;
}

void ref_collect(const simd::HitScan& scan, std::vector<HitRecord>& out) {
  const std::uint32_t mask = (1u << scan.offset_bits) - 1u;
  for (std::size_t i = 0; i < scan.count; ++i) {
    const std::uint32_t e = scan.entries[i];
    out.push_back({scan.bases[e >> scan.offset_bits] + (e & mask) +
                       scan.key_add,
                   scan.qoff});
  }
}

// One synthetic block layout + posting lists, honoring the HitScan
// precondition: entries ascending by (fragment, offset) and distinct, with
// per-fragment key bases spaced len + qlen + 1 apart — so within any scan
// the decoded keys are strictly ascending and distinct.
struct ScanCase {
  std::vector<std::uint32_t> bases;  ///< nfrags + 1 prefix sums
  std::uint32_t offset_bits = 0;
  std::uint32_t qlen = 0;
  std::int32_t min = 0;
  std::int32_t window = 0;
  std::vector<std::vector<std::uint32_t>> lists;  ///< sorted packed entries
};

ScanCase make_case(Rng& rng) {
  ScanCase c;
  // Query length classes: word-length edge, short, medium, long.
  switch (rng.next_below(4)) {
    case 0: c.qlen = 3; break;
    case 1: c.qlen = 4 + static_cast<std::uint32_t>(rng.next_below(5)); break;
    case 2: c.qlen = 64; break;
    default:
      c.qlen = 180 + static_cast<std::uint32_t>(rng.next_below(80));
      break;
  }
  // Two-hit thresholds, including the edges: window == min (pairing
  // impossible — every in-window delta is an overlap), window == min + 1
  // (delta exactly min is the only pairing distance), the production
  // W=3/A=40 pair, and a window wider than any fragment.
  static constexpr std::int32_t kMins[] = {1, 2, 3, 5};
  c.min = kMins[rng.next_below(4)];
  switch (rng.next_below(4)) {
    case 0: c.window = c.min; break;
    case 1: c.window = c.min + 1; break;
    case 2: c.window = 40; break;
    default: c.window = 1000; break;
  }

  // Fragment length classes: tiny (single-position), overlap-window sized,
  // long (many diagonals).
  const std::size_t nfrags = 1 + rng.next_below(6);
  std::vector<std::uint32_t> lens;
  std::uint32_t maxlen = 1;
  for (std::size_t f = 0; f < nfrags; ++f) {
    std::uint32_t len = 0;
    switch (rng.next_below(3)) {
      case 0: len = 1 + static_cast<std::uint32_t>(rng.next_below(4)); break;
      case 1: len = 5 + static_cast<std::uint32_t>(rng.next_below(36)); break;
      default:
        len = 150 + static_cast<std::uint32_t>(rng.next_below(250));
        break;
    }
    lens.push_back(len);
    maxlen = std::max(maxlen, len);
  }
  c.offset_bits = 1;
  while ((1u << c.offset_bits) < maxlen) ++c.offset_bits;
  c.bases.assign(1, 0);
  for (const std::uint32_t len : lens) {
    c.bases.push_back(c.bases.back() + len + c.qlen + 1);
  }

  // Every (fragment, offset) position, packed. Posting lists sample from
  // this universe with skewed sizes: empty, a handful, chunk-straddling,
  // and word-frequency-skew lists several kernel chunks long.
  std::vector<std::uint32_t> universe;
  for (std::size_t f = 0; f < nfrags; ++f) {
    for (std::uint32_t s = 0; s < lens[f]; ++s) {
      universe.push_back((static_cast<std::uint32_t>(f) << c.offset_bits) |
                         s);
    }
  }
  const std::size_t nlists = 1 + rng.next_below(5);
  for (std::size_t l = 0; l < nlists; ++l) {
    std::size_t want = 0;
    switch (rng.next_below(5)) {
      case 0: want = 0; break;
      case 1: want = 1 + rng.next_below(6); break;
      case 2: want = 100 + rng.next_below(60); break;  // straddles 128
      case 3: want = 250 + rng.next_below(300); break;
      default: want = universe.size(); break;
    }
    want = std::min(want, universe.size());
    // Partial Fisher-Yates: the first `want` slots become a uniform sample.
    std::vector<std::uint32_t> pool = universe;
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng.next_below(pool.size() - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(want);
    std::sort(pool.begin(), pool.end());
    c.lists.push_back(std::move(pool));
  }
  return c;
}

// ---- Kernel-level differential fuzz ---------------------------------------

// >= 10k posting-list scans per dispatched path, each checked against the
// classic automaton for the emitted record stream, the pair count, and the
// full raw last-hit array at every round boundary.
TEST(HitSimdFuzz, PrefilterMatchesClassicAutomaton) {
  const std::vector<simd::KernelPath> paths = all_paths();
  Rng rng(0x81757e57u);
  std::size_t scans = 0;
  std::vector<HitRecord> ref_out;
  std::vector<HitRecord> got(4096);

  while (scans < 12000) {
    const ScanCase c = make_case(rng);
    DiagState ref_state;
    ref_state.resize(c.bases.back());
    std::vector<DiagState> ker_state(paths.size());
    for (DiagState& s : ker_state) s.resize(c.bases.back());

    const std::uint32_t npos = c.qlen - kWordLength + 1;
    for (int round = 0; round < 3; ++round) {
      ref_state.new_round(static_cast<std::int32_t>(c.qlen) + 1);
      for (DiagState& s : ker_state) {
        s.new_round(static_cast<std::int32_t>(c.qlen) + 1);
      }
      for (std::uint32_t qoff = 0; qoff < npos; ++qoff) {
        // One or two lists per position; repeats of the same list at
        // successive qoffs exercise the dense per-diagonal automaton.
        const std::size_t nscans = 1 + rng.next_below(2);
        for (std::size_t s = 0; s < nscans; ++s) {
          const auto& list = c.lists[rng.next_below(c.lists.size())];
          const simd::HitScan scan{list.data(), list.size(), c.bases.data(),
                                   c.offset_bits, qoff, c.qlen - qoff};
          ref_out.clear();
          const std::size_t ref_cnt =
              ref_prefilter(scan, ref_state, c.min, c.window, ref_out);
          if (got.size() < list.size()) got.resize(list.size());
          for (std::size_t p = 0; p < paths.size(); ++p) {
            const simd::HitScanFilter filter{ker_state[p].raw_last(),
                                             ker_state[p].base(), c.min,
                                             c.window};
            const std::size_t cnt = simd::hit_scan_prefilter(
                paths[p], scan, filter, got.data());
            ASSERT_EQ(cnt, ref_cnt)
                << simd::kernel_name(paths[p]) << " scan " << scans;
            for (std::size_t i = 0; i < cnt; ++i) {
              ASSERT_EQ(got[i].key, ref_out[i].key)
                  << simd::kernel_name(paths[p]) << " scan " << scans
                  << " rec " << i;
              ASSERT_EQ(got[i].qoff, ref_out[i].qoff)
                  << simd::kernel_name(paths[p]) << " scan " << scans
                  << " rec " << i;
            }
          }
          ++scans;
        }
      }
      // The automaton's state must agree in its raw epoch-stamped
      // representation, not just through the accessor — the kernels write
      // the array directly.
      for (std::size_t p = 0; p < paths.size(); ++p) {
        ASSERT_TRUE(std::equal(ref_state.raw_last(),
                               ref_state.raw_last() + c.bases.back(),
                               ker_state[p].raw_last()))
            << simd::kernel_name(paths[p]) << " round " << round
            << " after " << scans << " scans";
        ASSERT_EQ(ref_state.base(), ker_state[p].base());
      }
    }
  }
  ASSERT_GE(scans, 10000u);
}

// The engines fuse all of one query position's posting lists into a single
// scan: keys stay pairwise distinct (disjoint (fragment, offset) sets per
// word) but are NOT ascending across list boundaries. The kernels only
// need distinctness — prove it on scans built exactly that way: a disjoint
// partition of the position universe, concatenated in random order.
TEST(HitSimdFuzz, FusedScanMatchesClassicAutomaton) {
  const std::vector<simd::KernelPath> paths = all_paths();
  Rng rng(0xf05edu);
  std::size_t scans = 0;
  std::vector<HitRecord> ref_out;
  std::vector<HitRecord> got;
  std::vector<std::uint32_t> fused;

  while (scans < 3000) {
    const ScanCase c = make_case(rng);
    // Partition every (fragment, offset) into disjoint "words": shuffle the
    // universe, deal it into 1..8 sorted lists.
    std::vector<std::uint32_t> universe;
    const std::size_t nfrags = c.bases.size() - 1;
    for (std::size_t f = 0; f < nfrags; ++f) {
      const std::uint32_t len =
          c.bases[f + 1] - c.bases[f] - c.qlen - 1;
      for (std::uint32_t s = 0; s < len; ++s) {
        universe.push_back((static_cast<std::uint32_t>(f) << c.offset_bits) |
                           s);
      }
    }
    for (std::size_t i = 0; i + 1 < universe.size(); ++i) {
      const std::size_t j = i + rng.next_below(universe.size() - i);
      std::swap(universe[i], universe[j]);
    }
    const std::size_t nwords = 1 + rng.next_below(8);
    std::vector<std::vector<std::uint32_t>> words(nwords);
    for (std::size_t i = 0; i < universe.size(); ++i) {
      words[i % nwords].push_back(universe[i]);
    }
    for (auto& w : words) std::sort(w.begin(), w.end());

    DiagState ref_state;
    ref_state.resize(c.bases.back());
    std::vector<DiagState> ker_state(paths.size());
    for (DiagState& s : ker_state) s.resize(c.bases.back());
    ref_state.new_round(static_cast<std::int32_t>(c.qlen) + 1);
    for (DiagState& s : ker_state) {
      s.new_round(static_cast<std::int32_t>(c.qlen) + 1);
    }

    const std::uint32_t npos = c.qlen - kWordLength + 1;
    for (std::uint32_t qoff = 0; qoff < npos && scans < 3000; ++qoff) {
      // Concatenate a random subset of the disjoint lists in random order
      // — the fused-scan shape, complete with unordered list boundaries.
      fused.clear();
      for (std::size_t w = 0; w < nwords; ++w) {
        if (rng.next_below(3) == 0) continue;
        const auto& list = words[(w + rng.next_below(nwords)) % nwords];
        fused.insert(fused.end(), list.begin(), list.end());
      }
      // Dedup across the picks so the distinctness precondition holds.
      std::vector<std::uint32_t> seen(fused);
      std::sort(seen.begin(), seen.end());
      if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
        continue;
      }
      if (fused.empty()) continue;
      const simd::HitScan scan{fused.data(), fused.size(), c.bases.data(),
                               c.offset_bits, qoff, c.qlen - qoff};
      ref_out.clear();
      const std::size_t ref_cnt =
          ref_prefilter(scan, ref_state, c.min, c.window, ref_out);
      if (got.size() < fused.size()) got.resize(fused.size());
      for (std::size_t p = 0; p < paths.size(); ++p) {
        const simd::HitScanFilter filter{ker_state[p].raw_last(),
                                         ker_state[p].base(), c.min,
                                         c.window};
        const std::size_t cnt =
            simd::hit_scan_prefilter(paths[p], scan, filter, got.data());
        ASSERT_EQ(cnt, ref_cnt)
            << simd::kernel_name(paths[p]) << " scan " << scans;
        for (std::size_t i = 0; i < cnt; ++i) {
          ASSERT_EQ(got[i].key, ref_out[i].key)
              << simd::kernel_name(paths[p]) << " scan " << scans;
          ASSERT_EQ(got[i].qoff, ref_out[i].qoff)
              << simd::kernel_name(paths[p]) << " scan " << scans;
        }
        ASSERT_TRUE(std::equal(ref_state.raw_last(),
                               ref_state.raw_last() + c.bases.back(),
                               ker_state[p].raw_last()))
            << simd::kernel_name(paths[p]) << " scan " << scans;
      }
      ++scans;
    }
  }
}

TEST(HitSimdFuzz, CollectMatchesScalarDecode) {
  const std::vector<simd::KernelPath> paths = all_paths();
  Rng rng(0xc011ec7u);
  std::size_t scans = 0;
  std::vector<HitRecord> ref_out;
  std::vector<HitRecord> got(4096);

  while (scans < 2000) {
    const ScanCase c = make_case(rng);
    const std::uint32_t npos = c.qlen - kWordLength + 1;
    for (std::uint32_t qoff = 0; qoff < npos; qoff += 1 + rng.next_below(8)) {
      const auto& list = c.lists[rng.next_below(c.lists.size())];
      const simd::HitScan scan{list.data(), list.size(), c.bases.data(),
                               c.offset_bits, qoff, c.qlen - qoff};
      ref_out.clear();
      ref_collect(scan, ref_out);
      if (got.size() < list.size()) got.resize(list.size());
      for (const simd::KernelPath path : paths) {
        const std::size_t cnt = simd::hit_scan_collect(path, scan, got.data());
        ASSERT_EQ(cnt, list.size()) << simd::kernel_name(path);
        for (std::size_t i = 0; i < cnt; ++i) {
          ASSERT_EQ(got[i].key, ref_out[i].key)
              << simd::kernel_name(path) << " scan " << scans << " rec " << i;
          ASSERT_EQ(got[i].qoff, ref_out[i].qoff)
              << simd::kernel_name(path) << " scan " << scans << " rec " << i;
        }
      }
      ++scans;
    }
  }
}

// Tallies: vector paths split scans into full tiles + a scalar tail; the
// scalar dispatch books everything as tail. Telemetry only — but it must
// account for every entry it claims to.
TEST(HitSimdFuzz, TalliesAccountForEveryEntry) {
  Rng rng(0x7a111e5u);
  ScanCase c;
  do {
    c = make_case(rng);
  } while (c.lists.empty() || c.lists[0].size() < 300);
  const auto& list = c.lists[0];
  const simd::HitScan scan{list.data(), list.size(), c.bases.data(),
                           c.offset_bits, 0, c.qlen};
  std::vector<HitRecord> got(list.size());

  simd::HitScanTallies scalar_tallies;
  DiagState s0;
  s0.resize(c.bases.back());
  s0.new_round(static_cast<std::int32_t>(c.qlen) + 1);
  simd::hit_scan_prefilter(
      simd::KernelPath::kScalar, scan,
      {s0.raw_last(), s0.base(), c.min, c.window}, got.data(),
      &scalar_tallies);
  EXPECT_EQ(scalar_tallies.tiles, 0u);
  EXPECT_EQ(scalar_tallies.tail_entries, list.size());

  for (const simd::KernelPath path : vector_paths()) {
    // The AVX2 prefilter mixes 8-lane tiles with 4-lane sub-tiles, so the
    // per-tile width is a range, not a constant: every entry is either in
    // a tile of 4..8 lanes or in the scalar tail.
    const std::size_t max_lanes = path == simd::KernelPath::kAvx2 ? 8 : 4;
    simd::HitScanTallies t;
    DiagState st;
    st.resize(c.bases.back());
    st.new_round(static_cast<std::int32_t>(c.qlen) + 1);
    simd::hit_scan_prefilter(path, scan,
                             {st.raw_last(), st.base(), c.min, c.window},
                             got.data(), &t);
    EXPECT_GT(t.tiles, 0u) << simd::kernel_name(path);
    EXPECT_GE(t.tiles * max_lanes + t.tail_entries, list.size())
        << simd::kernel_name(path);
    EXPECT_LE(t.tiles * 4 + t.tail_entries, list.size())
        << simd::kernel_name(path);

    simd::HitScanTallies tc;
    simd::hit_scan_collect(path, scan, got.data(), &tc);
    EXPECT_GT(tc.tiles, 0u) << simd::kernel_name(path);
    EXPECT_EQ(tc.tiles * max_lanes + tc.tail_entries, list.size())
        << simd::kernel_name(path);
  }
}

// ---- FlatNeighborhood ------------------------------------------------------

// The flattened table must visit exactly the posting lists the classic
// two-level scan visits, in the same order.
TEST(FlatNeighborhood, MatchesTwoLevelScanOrder)
{
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(60000), 808);
  Rng rng(809);
  const SequenceStore queries = synth::sample_queries(db, 3, 96, rng);
  const DbIndex index = DbIndex::build(db, {});
  const NeighborTable& neighbors = index.neighbors();

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto query = queries.sequence(static_cast<SeqId>(qi));
    FlatNeighborhood flat;
    flat.build(query, neighbors);
    ASSERT_TRUE(flat.built_for(query, neighbors));
    ASSERT_EQ(flat.positions(), query.size() - kWordLength + 1);
    std::size_t total = 0;
    for (std::uint32_t qoff = 0; qoff + kWordLength <= query.size();
         ++qoff) {
      const auto nbs = neighbors.neighbors(word_key(query.data() + qoff));
      const auto words = flat.words(qoff);
      ASSERT_EQ(words.size(), nbs.size()) << "qoff " << qoff;
      for (std::size_t i = 0; i < nbs.size(); ++i) {
        ASSERT_EQ(words[i], nbs[i]) << "qoff " << qoff << " word " << i;
      }
      total += nbs.size();
    }
    ASSERT_EQ(flat.total_words(), total);
  }
}

TEST(FlatNeighborhood, ShortQueryHasNoPositions) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(20000), 810);
  const DbIndex index = DbIndex::build(db, {});
  const std::vector<Residue> tiny(kWordLength - 1, Residue{3});
  FlatNeighborhood flat;
  flat.build({tiny.data(), tiny.size()}, index.neighbors());
  EXPECT_EQ(flat.positions(), 0u);
  EXPECT_EQ(flat.total_words(), 0u);
}

// ---- Engine-level equivalence ---------------------------------------------

// A workload with deliberate word-frequency skew: the low-complexity
// subjects blow single posting lists far past one kernel chunk, and the
// matching low-complexity query scans them at every position.
struct SkewWorkload {
  SequenceStore db;
  std::vector<std::vector<Residue>> queries;
};

SkewWorkload make_skew_workload() {
  SkewWorkload w;
  w.db = synth::generate_database(synth::sprot_like(120000), 515);
  Rng rng(0x5e3d);
  // Low-complexity subjects: 3-letter alphabet, 400 residues each — every
  // word is one of 27, so its posting list holds hundreds of entries.
  for (int s = 0; s < 6; ++s) {
    std::vector<Residue> seq(400);
    for (auto& r : seq) r = static_cast<Residue>(rng.next_below(3));
    w.db.add({seq.data(), seq.size()});
  }
  // Queries per length class: normal sampled, short (barely above word
  // length), and a low-complexity one hitting the skewed lists.
  const SequenceStore sampled = synth::sample_queries(w.db, 2, 128, rng);
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    const auto q = sampled.sequence(static_cast<SeqId>(i));
    w.queries.emplace_back(q.begin(), q.end());
  }
  std::vector<Residue> tiny(6);
  for (auto& r : tiny) r = static_cast<Residue>(rng.next_below(20));
  w.queries.push_back(tiny);
  std::vector<Residue> low(160);
  for (auto& r : low) r = static_cast<Residue>(rng.next_below(3));
  w.queries.push_back(low);
  return w;
}

void expect_same_result(const QueryResult& ref, const QueryResult& got,
                        const std::string& label) {
  ASSERT_EQ(got.ungapped.size(), ref.ungapped.size()) << label;
  for (std::size_t i = 0; i < ref.ungapped.size(); ++i) {
    ASSERT_EQ(got.ungapped[i], ref.ungapped[i]) << label << " seg " << i;
  }
  ASSERT_EQ(got.alignments.size(), ref.alignments.size()) << label;
  for (std::size_t i = 0; i < ref.alignments.size(); ++i) {
    const GappedAlignment& x = ref.alignments[i];
    const GappedAlignment& y = got.alignments[i];
    ASSERT_EQ(y.subject, x.subject) << label << " aln " << i;
    ASSERT_EQ(y.score, x.score) << label << " aln " << i;
    ASSERT_EQ(y.q_start, x.q_start) << label << " aln " << i;
    ASSERT_EQ(y.q_end, x.q_end) << label << " aln " << i;
    ASSERT_EQ(y.s_start, x.s_start) << label << " aln " << i;
    ASSERT_EQ(y.s_end, x.s_end) << label << " aln " << i;
    ASSERT_EQ(y.ops, x.ops) << label << " aln " << i;
  }
  // The deterministic counters — hits, pairs, records through the sort,
  // extensions, alignments — must be equal, not merely the outputs.
  EXPECT_EQ(got.stats.hits, ref.stats.hits) << label;
  EXPECT_EQ(got.stats.hit_pairs, ref.stats.hit_pairs) << label;
  EXPECT_EQ(got.stats.sorted_records, ref.stats.sorted_records) << label;
  EXPECT_EQ(got.stats.extensions, ref.stats.extensions) << label;
  EXPECT_EQ(got.stats.ungapped_alignments, ref.stats.ungapped_alignments)
      << label;
  EXPECT_EQ(got.stats.gapped_extensions, ref.stats.gapped_extensions)
      << label;
}

TEST(HitSimdEngine, MuBlastpBitIdenticalAcrossKernels) {
  const SkewWorkload w = make_skew_workload();
  const DbIndex index = DbIndex::build(w.db, {});

  for (const bool prefilter : {true, false}) {
    MuBlastpOptions scalar_opts;
    scalar_opts.prefilter = prefilter;
    scalar_opts.kernel = simd::KernelPath::kScalar;
    const MuBlastpEngine scalar_engine(index, {}, scalar_opts);

    for (const simd::KernelPath path : vector_paths()) {
      MuBlastpOptions opts;
      opts.prefilter = prefilter;
      opts.kernel = path;
      const MuBlastpEngine engine(index, {}, opts);
      for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
        const auto& q = w.queries[qi];
        const QueryResult ref =
            scalar_engine.search({q.data(), q.size()});
        const QueryResult got = engine.search({q.data(), q.size()});
        expect_same_result(
            ref, got,
            std::string(simd::kernel_name(path)) +
                (prefilter ? "/prefilter" : "/alg1") + " query " +
                std::to_string(qi));
      }
    }
  }
}

TEST(HitSimdEngine, InterleavedBitIdenticalAcrossKernels) {
  const SkewWorkload w = make_skew_workload();
  const DbIndex index = DbIndex::build(w.db, {});
  const InterleavedDbEngine scalar_engine(index, {},
                                          simd::KernelPath::kScalar);
  for (const simd::KernelPath path : vector_paths()) {
    const InterleavedDbEngine engine(index, {}, path);
    for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
      const auto& q = w.queries[qi];
      const QueryResult ref = scalar_engine.search({q.data(), q.size()});
      const QueryResult got = engine.search({q.data(), q.size()});
      expect_same_result(ref, got,
                         std::string(simd::kernel_name(path)) + " query " +
                             std::to_string(qi));
    }
  }
}

TEST(HitSimdEngine, BatchBitIdenticalAcrossKernels) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(100000), 515);
  Rng rng(516);
  const SequenceStore queries = synth::sample_queries(db, 4, 128, rng);
  const DbIndex index = DbIndex::build(db, {});

  MuBlastpOptions scalar_opts;
  scalar_opts.kernel = simd::KernelPath::kScalar;
  const MuBlastpEngine scalar_engine(index, {}, scalar_opts);
  const std::vector<QueryResult> ref =
      scalar_engine.search_batch(queries, 2);

  for (const simd::KernelPath path : vector_paths()) {
    MuBlastpOptions opts;
    opts.kernel = path;
    const MuBlastpEngine engine(index, {}, opts);
    const std::vector<QueryResult> got = engine.search_batch(queries, 2);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_same_result(ref[i], got[i],
                         std::string(simd::kernel_name(path)) + " batch q" +
                             std::to_string(i));
    }
  }
}

// ---- hit_kernel telemetry --------------------------------------------------

TEST(HitSimdEngine, TelemetryBooksFlattenAndTiles) {
  const SkewWorkload w = make_skew_workload();
  const DbIndex index = DbIndex::build(w.db, {});

  MuBlastpOptions scalar_opts;
  scalar_opts.kernel = simd::KernelPath::kScalar;
  const MuBlastpEngine scalar_engine(index, {}, scalar_opts);
  stats::PipelineStats scalar_ps;
  const auto& low = w.queries.back();
  scalar_engine.search({low.data(), low.size()}, scalar_ps);
  // Scalar runs never build the flattened table or run the kernels: the
  // optional hit_kernel object stays empty.
  EXPECT_FALSE(scalar_ps.snapshot().hit_kernel.any());

  for (const simd::KernelPath path : vector_paths()) {
    MuBlastpOptions opts;
    opts.kernel = path;
    const MuBlastpEngine engine(index, {}, opts);
    stats::PipelineStats ps;
    engine.search({low.data(), low.size()}, ps);
    const stats::PipelineSnapshot snap = ps.snapshot();
    EXPECT_EQ(snap.hit_kernel.flatten_builds, 1u)
        << simd::kernel_name(path);
    EXPECT_GT(snap.hit_kernel.tiles, 0u) << simd::kernel_name(path);
  }
}

}  // namespace
}  // namespace mublastp
