// Engine-level behavioural tests: API contracts, stage statistics,
// sensitivity against Smith-Waterman ground truth, and threading.
#include <gtest/gtest.h>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "baseline/smith_waterman.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/gapped.hpp"
#include "core/mublastp_engine.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = synth::generate_database(synth::sprot_like(150000), 77);
    Rng rng(78);
    queries_ = synth::sample_queries(db_, 4, 128, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = 64 * 1024;
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
};

TEST_F(EngineFixture, RejectsTooShortQuery) {
  const MuBlastpEngine mu(*index_);
  const std::vector<Residue> tiny{0, 1};
  EXPECT_THROW(mu.search(tiny), Error);
  const QueryIndexedEngine ncbi(db_);
  EXPECT_THROW(ncbi.search(tiny), Error);
  const InterleavedDbEngine idb(*index_);
  EXPECT_THROW(idb.search(tiny), Error);
}

TEST_F(EngineFixture, QueryEngineRejectsEmptyDb) {
  SequenceStore empty;
  EXPECT_THROW(QueryIndexedEngine{empty}, Error);
}

TEST_F(EngineFixture, StatsAreInternallyConsistent) {
  const MuBlastpEngine mu(*index_);
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const QueryResult r = mu.search(queries_.sequence(q));
    EXPECT_GT(r.stats.hits, 0u);
    EXPECT_LE(r.stats.hit_pairs, r.stats.hits);
    EXPECT_LE(r.stats.extensions, r.stats.hit_pairs);
    EXPECT_LE(r.stats.ungapped_alignments, r.stats.extensions);
    // With pre-filtering, only pairs are sorted.
    EXPECT_EQ(r.stats.sorted_records, r.stats.hit_pairs);
  }
}

TEST_F(EngineFixture, WithoutPrefilterAllHitsAreSorted) {
  MuBlastpOptions o;
  o.prefilter = false;
  const MuBlastpEngine mu(*index_, {}, o);
  const QueryResult r = mu.search(queries_.sequence(0));
  EXPECT_EQ(r.stats.sorted_records, r.stats.hits);
}

TEST_F(EngineFixture, PrefilterKeepsSmallFraction) {
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(queries_.sequence(0));
  // Figure 6's point: the pre-filter removes the overwhelming majority.
  EXPECT_LT(static_cast<double>(r.stats.hit_pairs),
            0.5 * static_cast<double>(r.stats.hits));
}

TEST_F(EngineFixture, ResultsAreRankedByScore) {
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(queries_.sequence(1));
  for (std::size_t i = 0; i + 1 < r.alignments.size(); ++i) {
    EXPECT_GE(r.alignments[i].score, r.alignments[i + 1].score);
  }
}

TEST_F(EngineFixture, EvaluesGrowAsScoresShrink) {
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(queries_.sequence(2));
  for (std::size_t i = 0; i + 1 < r.alignments.size(); ++i) {
    if (r.alignments[i].score > r.alignments[i + 1].score) {
      EXPECT_LT(r.alignments[i].evalue, r.alignments[i + 1].evalue);
    }
  }
}

TEST_F(EngineFixture, TracebackRescoresToReportedScore) {
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(queries_.sequence(3));
  ASSERT_FALSE(r.alignments.empty());
  for (const GappedAlignment& a : r.alignments) {
    ASSERT_FALSE(a.ops.empty());
    const auto subject = db_.sequence(a.subject);
    EXPECT_EQ(score_of_transcript(queries_.sequence(3), subject, a,
                                  blosum62(), mu.params().gap_open,
                                  mu.params().gap_extend),
              a.score);
  }
}

TEST_F(EngineFixture, HeuristicScoreNeverExceedsSmithWaterman) {
  const MuBlastpEngine mu(*index_);
  const auto query = queries_.sequence(0);
  const QueryResult r = mu.search(query);
  ASSERT_FALSE(r.alignments.empty());
  const std::size_t check = std::min<std::size_t>(r.alignments.size(), 5);
  for (std::size_t i = 0; i < check; ++i) {
    const GappedAlignment& a = r.alignments[i];
    const auto sw =
        smith_waterman(query, db_.sequence(a.subject), blosum62(), 11, 1);
    EXPECT_LE(a.score, sw.score);
  }
}

TEST_F(EngineFixture, FindsPlantedFamilyMemberAsTopHit) {
  // Queries are windows of database sequences: the source sequence itself
  // must be the (or near the) top alignment.
  const MuBlastpEngine mu(*index_);
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const QueryResult r = mu.search(queries_.sequence(q));
    ASSERT_FALSE(r.alignments.empty()) << "query " << q;
    // Top hit covers (almost) the full query with a near-self score.
    const GappedAlignment& top = r.alignments.front();
    const std::size_t qlen = queries_.length(q);
    EXPECT_GT(top.q_end - top.q_start, qlen * 9 / 10);
    Score self = 0;
    const auto query = queries_.sequence(q);
    for (const Residue res : query) self += blosum62()(res, res);
    EXPECT_GT(top.score, self * 9 / 10);
  }
}

TEST_F(EngineFixture, BatchThreadCountsAgree) {
  const MuBlastpEngine mu(*index_);
  const auto one = mu.search_batch(queries_, 1);
  const auto four = mu.search_batch(queries_, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].alignments.size(), four[i].alignments.size());
    for (std::size_t j = 0; j < one[i].alignments.size(); ++j) {
      EXPECT_EQ(one[i].alignments[j].score, four[i].alignments[j].score);
      EXPECT_EQ(one[i].alignments[j].ops, four[i].alignments[j].ops);
    }
  }
}

TEST_F(EngineFixture, BaselineBatchesAlsoThreadSafely) {
  const QueryIndexedEngine ncbi(db_);
  const auto one = ncbi.search_batch(queries_, 1);
  const auto two = ncbi.search_batch(queries_, 2);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].ungapped, two[i].ungapped);
  }
  const InterleavedDbEngine idb(*index_);
  const auto a = idb.search_batch(queries_, 1);
  const auto b = idb.search_batch(queries_, 2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ungapped, b[i].ungapped);
  }
}

TEST_F(EngineFixture, EvalueCutoffTrimsReportedAlignments) {
  const MuBlastpEngine loose(*index_);
  SearchParams strict_params;
  strict_params.evalue_cutoff = 1e-30;
  const MuBlastpEngine strict(*index_, strict_params);
  const auto query = queries_.sequence(0);
  const QueryResult rl = loose.search(query);
  const QueryResult rs = strict.search(query);
  EXPECT_LE(rs.alignments.size(), rl.alignments.size());
  for (const GappedAlignment& a : rs.alignments) {
    EXPECT_LE(a.evalue, 1e-30);
  }
  for (const GappedAlignment& a : rl.alignments) {
    EXPECT_LE(a.evalue, loose.params().evalue_cutoff);
  }
  // The strict list is a prefix of the loose one (same ranking).
  for (std::size_t i = 0; i < rs.alignments.size(); ++i) {
    EXPECT_EQ(rs.alignments[i].score, rl.alignments[i].score);
    EXPECT_EQ(rs.alignments[i].subject, rl.alignments[i].subject);
  }
}

TEST_F(EngineFixture, BatchRejectsNonPositiveThreads) {
  const MuBlastpEngine mu(*index_);
  EXPECT_THROW(mu.search_batch(queries_, 0), Error);
}

TEST_F(EngineFixture, InvalidSearchParamsAreRejectedAtConstruction) {
  SearchParams bad;
  bad.gap_extend = 0;
  EXPECT_THROW(MuBlastpEngine(*index_, bad), Error);
  bad = {};
  bad.two_hit_window = 2;  // <= two_hit_min
  EXPECT_THROW(InterleavedDbEngine(*index_, bad), Error);
  bad = {};
  bad.matrix = nullptr;
  EXPECT_THROW(QueryIndexedEngine(db_, bad), Error);
  bad = {};
  bad.evalue_cutoff = -1.0;
  EXPECT_THROW(MuBlastpEngine(*index_, bad), Error);
  bad = {};
  bad.max_alignments = 0;
  EXPECT_THROW(MuBlastpEngine(*index_, bad), Error);
}

TEST_F(EngineFixture, TracedRunReportsHierarchyTraffic) {
  const InterleavedDbEngine idb(*index_);
  memsim::MemoryHierarchy h;
  idb.search_traced(queries_.sequence(0), h);
  const auto s = h.stats();
  EXPECT_GT(s.references, 10000u);
  EXPECT_GT(s.llc_accesses, 0u);
}

TEST_F(EngineFixture, UngappedSegmentsMeetCutoff) {
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(queries_.sequence(0));
  for (const UngappedAlignment& u : r.ungapped) {
    EXPECT_GE(u.score, mu.params().ungapped_cutoff);
    EXPECT_EQ(u.q_end - u.q_start, u.s_end - u.s_start);
    EXPECT_LT(u.subject, db_.size());
  }
}

}  // namespace
}  // namespace mublastp
