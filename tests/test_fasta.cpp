#include "fasta/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/rng.hpp"

namespace mublastp {
namespace {

SequenceStore parse(const std::string& text) {
  std::istringstream in(text);
  SequenceStore store;
  read_fasta(in, store);
  return store;
}

// Parses expecting failure; returns the Error for kind/message assertions.
Error parse_error(const std::string& text) {
  std::istringstream in(text);
  SequenceStore store;
  try {
    read_fasta(in, store);
  } catch (const Error& e) {
    return e;
  }
  ADD_FAILURE() << "input was accepted: " << text;
  return Error("unreached");
}

TEST(Fasta, ParsesSingleRecord) {
  const auto store = parse(">seq1 description here\nARNDC\n");
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.name(0), "seq1 description here");
  EXPECT_EQ(store.length(0), 5u);
}

TEST(Fasta, ParsesMultilineSequences) {
  const auto store = parse(">s\nARND\nCQEG\nHI\n");
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.length(0), 10u);
}

TEST(Fasta, ParsesMultipleRecords) {
  const auto store = parse(">a\nAAA\n>b\nRRRR\n>c\nNN\n");
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.name(0), "a");
  EXPECT_EQ(store.name(2), "c");
  EXPECT_EQ(store.length(1), 4u);
}

TEST(Fasta, SkipsBlankLines) {
  const auto store = parse("\n>a\nAAA\n\n\n>b\n\nRR\n");
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.length(1), 2u);
}

TEST(Fasta, HandlesWindowsLineEndings) {
  const auto store = parse(">a desc\r\nARND\r\nCQ\r\n");
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.name(0), "a desc");
  EXPECT_EQ(store.length(0), 6u);
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
  std::istringstream in("ARND\n>a\nAAA\n");
  SequenceStore store;
  EXPECT_THROW(read_fasta(in, store), Error);
}

TEST(Fasta, RejectsEmptyRecord) {
  std::istringstream in(">a\n>b\nAAA\n");
  SequenceStore store;
  EXPECT_THROW(read_fasta(in, store), Error);
}

TEST(Fasta, ReturnsRecordCount) {
  std::istringstream in(">a\nAA\n>b\nRR\n");
  SequenceStore store;
  EXPECT_EQ(read_fasta(in, store), 2u);
}

TEST(Fasta, AppendsToExistingStore) {
  SequenceStore store;
  store.add_ascii("CCCC", "existing");
  std::istringstream in(">new\nAAA\n");
  read_fasta(in, store);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.name(0), "existing");
  EXPECT_EQ(store.name(1), "new");
}

TEST(Fasta, WriteReadRoundTrip) {
  SequenceStore store;
  store.add_ascii("ARNDCQEGHILKMFPSTWYV", "first seq");
  store.add_ascii("BZX", "second");
  std::ostringstream out;
  write_fasta(out, store, 7);  // force wrapping
  const SequenceStore back = parse(out.str());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.name(0), "first seq");
  EXPECT_EQ(back.length(0), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(back.sequence(0)[i], store.sequence(0)[i]);
  }
}

TEST(Fasta, WriterWrapsAtWidth) {
  SequenceStore store;
  store.add_ascii(std::string(25, 'A'), "s");
  std::ostringstream out;
  write_fasta(out, store, 10);
  EXPECT_EQ(out.str(), ">s\nAAAAAAAAAA\nAAAAAAAAAA\nAAAAA\n");
}

TEST(Fasta, WriteRejectsZeroWidth) {
  SequenceStore store;
  store.add_ascii("AAA");
  std::ostringstream out;
  EXPECT_THROW(write_fasta(out, store, 0), Error);
}

TEST(Fasta, FileRoundTrip) {
  SequenceStore store;
  store.add_ascii("ARNDCQ", "file test");
  const std::string path = ::testing::TempDir() + "/mublastp_fasta_test.fa";
  write_fasta_file(path, store);
  SequenceStore back;
  EXPECT_EQ(read_fasta_file(path, back), 1u);
  EXPECT_EQ(back.name(0), "file test");
}

TEST(Fasta, MissingFileThrows) {
  SequenceStore store;
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa", store), Error);
}

TEST(Fasta, UnknownResiduesBecomeX) {
  const auto store = parse(">a\nA1A\n");
  EXPECT_EQ(store.sequence(0)[1], encode_residue('X'));
}

TEST(Fasta, RandomByteStreamsNeverCrash) {
  // Fuzz-lite: arbitrary byte soup must either parse or throw
  // mublastp::Error — never crash or corrupt the store.
  Rng rng(0xFA57A);
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup(rng.next_below(400), '\0');
    for (auto& c : soup) {
      c = static_cast<char>(rng.next_below(256));
    }
    std::istringstream in(soup);
    SequenceStore store;
    try {
      const std::size_t n = read_fasta(in, store);
      EXPECT_EQ(n, store.size());
      for (SeqId i = 0; i < store.size(); ++i) {
        EXPECT_GT(store.length(i), 0u);
      }
    } catch (const Error&) {
      // acceptable outcome for malformed input
    }
  }
}

TEST(Fasta, HeaderOnlyGarbageWithNewlinesParses) {
  // '>' lines with binary junk are tolerated as names.
  const auto store = parse(">\x01\x02garbage\xff\nARND\n");
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.length(0), 4u);
}

TEST(Fasta, EmptyRecordErrorNamesRecordAndLine) {
  const Error e = parse_error(">first\nAAA\n>empty one\n>c\nRR\n");
  EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  EXPECT_NE(std::string(e.what()).find("empty one"), std::string::npos)
      << e.what();
  EXPECT_NE(std::string(e.what()).find("record 2"), std::string::npos)
      << e.what();
  EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
      << e.what();
}

TEST(Fasta, TrailingHeaderWithNoSequenceIsRejected) {
  const Error e = parse_error(">a\nAAA\n>tail\n");
  EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  EXPECT_NE(std::string(e.what()).find("tail"), std::string::npos);
}

TEST(Fasta, SequenceBeforeHeaderIsCorrupt) {
  const Error e = parse_error("ARND\n>a\nAAA\n");
  EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
      << e.what();
}

TEST(Fasta, NulByteIsRejectedWithLocation) {
  std::string text = ">a\nAR_D\n";
  text[4] = '\0';  // NUL inside the sequence line
  const Error e = parse_error(text);
  EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  EXPECT_NE(std::string(e.what()).find("NUL"), std::string::npos) << e.what();
  EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
      << e.what();
}

TEST(Fasta, NulByteInHeaderIsRejected) {
  std::string text = ">a_b\nARND\n";
  text[2] = '\0';
  EXPECT_EQ(parse_error(text).kind(), ErrorKind::kCorrupt);
}

TEST(Fasta, InjectedReadFailureIsTypedIo) {
  fi::reset();
  fi::arm("io.read", 1);
  std::istringstream in(">a\nARND\n");
  SequenceStore store;
  try {
    read_fasta(in, store);
    ADD_FAILURE() << "armed io.read did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  fi::reset();
  // Disarmed, the same stream parses fine (site is a no-op).
  std::istringstream again(">a\nARND\n");
  EXPECT_EQ(read_fasta(again, store), 1u);
}

}  // namespace
}  // namespace mublastp
