// mublastp_search: search FASTA queries against a saved index — the
// "blastp" step of the database-indexed workflow.
//
// Usage:
//   mublastp_search --index=db.mbi --query=q.fasta [--threads=N]
//                   [--outfmt=pairwise|tabular|none] [--max-alignments=K]
//                   [--stats[=json]] [--mmap|--no-mmap]
//                   [--kernel=auto|scalar|sse42|avx2[+ungapped]]
//                   [--strict] [--inject=site:Nth[:errno]]
//                   [--time-budget=SEC] [--mem-budget-mb=N]
//                   [--out=FILE] [--checkpoint=FILE] [--batch-size=16]
//                   [--trace=FILE] [--trace-counters] [--progress[=force]]
//   mublastp_search --shards-manifest=db.mbi --query=q.fasta
//                   [--shard-mode=thread|process] [...common flags...]
//
// --trace=FILE records a span timeline of the whole run (index load, every
// stage of every (block, query) round, shard workers, the cross-shard
// merge) and writes it as Chrome trace-event JSON (schema
// "mublastp-trace-v1", loadable in Perfetto / chrome://tracing; see
// docs/OBSERVABILITY.md). --trace-counters additionally samples hardware
// counters (cycles, instructions, LLC misses, branch mispredicts) per
// stage span via perf_event_open(2) — silently degrading to plain
// timestamps where the kernel forbids it — and folds per-stage totals into
// the stats-v1 "perf_counters" object.
//
// --progress prints a one-line heartbeat to stderr at each block's serial
// point (blocks done, quarantines, ETA). It is suppressed when stdout or
// stderr is not a TTY so piped output stays clean; --progress=force prints
// regardless.
//
// Sharded mode (--shards-manifest, exclusive with --index): loads the
// MUSHARD01 manifest written by `mublastp_makedb --shards=N`, fans the
// query batch out to one worker per shard (--shard-mode=thread runs them
// in-process, each with its share of --threads; --shard-mode=process
// fork(2)s one child per shard and reads results back over CRC-framed
// pipes), rescales every E-value over the COMBINED database size, and
// merges per-shard hits into the same globally-ordered top-k an unsharded
// search of the whole database produces — bit-identical output (see
// docs/SHARDING.md). A shard that fails (index rot, worker crash, injected
// fault) is quarantined: surviving shards complete, the victim is named in
// the stats-v1 "degraded" object ("quarantined_shards") and the run exits
// 3 (partial). --strict fails closed instead: exit 5 for load-time
// corruption, 4 for a dead worker. The "shards" stats object records
// per-shard timings/hits and predicted-vs-measured imbalance.
//
// --threads defaults to the OpenMP thread pool size (omp_get_max_threads);
// non-positive values are rejected. --kernel selects the alignment-DP
// kernel ("auto" = best the CPU supports, the default) used by the banded
// gapped extension; the "+ungapped" suffix additionally opts the ungapped
// stage into its batched vector kernel (off by default — slower than
// scalar). Results are bit-identical for every kernel.
//
// Index loading: v3 index files are memory-mapped by default (zero-copy;
// pages shared with other processes serving the same database), v2 files
// are copy-loaded. --mmap forces the mapped path (errors on v2 files);
// --no-mmap forces the copy loader for either version.
//
// Incremental databases (docs/INCREMENTAL.md): when `mublastp_makedb
// --append` has published a MUGEN01 generation next to --index, the tool
// transparently resolves the newest generation and searches the whole
// base+delta chain — E-values priced over the combined database, output
// bit-identical to a from-scratch rebuild. A corrupt newest manifest fails
// closed (exit 5). In degraded mode a rotted chain member is quarantined
// (exit 3, named in the stats-v1 "degraded" object) and the surviving
// members complete.
//
// Degraded mode (the default; see docs/ROBUSTNESS.md): an index block whose
// checksum fails is quarantined and the search continues over the surviving
// blocks; a failed mmap load is retried once after a short backoff and then
// falls back to the copy loader; worker failures inside one block quarantine
// that block. Any degradation marks the run partial (exit code 3) and is
// reported in the stats-v1 "degraded" object. --strict turns all of this
// off: the first failure aborts the run with a typed exit code.
//
// --time-budget cuts off any query whose stage-1/2 time exceeds SEC seconds;
// --mem-budget-mb bounds the total retained workspace bytes across threads.
//
// --checkpoint journals completed query batches (of --batch-size queries)
// into FILE so a killed run resumes without re-searching; it requires --out
// because resuming truncates the output file back to the last durable batch
// boundary. Resumed output is bit-identical to an uninterrupted run.
//
// --stats prints a human-readable pipeline-telemetry table to stderr;
// --stats=json emits the machine-readable snapshot (schema
// "mublastp-stats-v1", see docs/ALGORITHMS.md) to stdout, including an
// "index" object recording the load mode/time/residency and, on degraded
// runs, the "degraded" object. Combine --stats=json with --outfmt=none (or
// --out) for a stdout that is pure JSON.
//
// Exit codes: 0 complete, 1 generic failure, 2 usage error, 3 partial
// results (degraded), 4 I/O error, 5 corrupt input, 6 resource exhaustion,
// 7 canceled (budget exceeded in --strict mode).
#include <fcntl.h>
#include <omp.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "cluster/gen_chain.hpp"
#include "cluster/orchestrator.hpp"
#include "common/checkpoint.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index_io.hpp"
#include "index/generation.hpp"
#include "index/mapped_db_index.hpp"
#include "report/report.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

/// Everything the tool knows about how this run deviated; folded into the
/// stats snapshot and the exit code at the end.
struct RunDegradation {
  stats::DegradedStats stats;

  void absorb_quarantines(const std::vector<BlockQuarantine>& qs) {
    for (const BlockQuarantine& q : qs) {
      stats.quarantined.push_back({q.block, q.reason});
      stats.partial = true;
    }
  }
};

/// Either loader's result behind one view; keeps the storage alive.
struct LoadedIndex {
  std::optional<MappedDbIndex> mapped;
  std::optional<DbIndex> owned;
  std::string mode;  // "mmap" or "copy"

  DbIndexView view() const {
    return mapped ? DbIndexView(*mapped) : DbIndexView(*owned);
  }
};

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

/// Loads the index with the degradation policy: mmap loads retry once after
/// a short backoff, then fall back to the copy loader; block corruption is
/// tolerated (quarantined) unless `strict`.
LoadedIndex load_index(const std::string& path, bool use_mmap, bool strict,
                       RunDegradation& deg) {
  LoadedIndex out;
  std::vector<BlockQuarantine> quarantined;
  const auto load_mapped = [&] {
    MappedDbIndexOptions opts;
    opts.tolerate_block_corruption = !strict;
    // Prefault under the SIGBUS guard so truncated-after-mmap files become
    // a catchable Error(kIo) feeding the retry/fallback below, instead of
    // killing the process mid-verification.
    opts.prefault = !strict;
    out.mapped.emplace(path, opts);
    quarantined = out.mapped->quarantined();
    out.mode = "mmap";
  };
  const auto load_copy = [&] {
    IndexLoadOptions opts;
    opts.tolerate_block_corruption = !strict;
    opts.quarantined = &quarantined;
    out.owned.emplace(load_db_index_file(path, opts));
    out.mode = "copy";
  };

  if (!use_mmap) {
    load_copy();
  } else if (strict) {
    load_mapped();
  } else {
    try {
      load_mapped();
    } catch (const Error& first) {
      // Transient mmap failures (ENOMEM under pressure, a racing writer)
      // deserve one more try; persistent ones get the copy loader, which
      // has no address-space or SIGBUS exposure.
      std::fprintf(stderr, "warning: mmap load failed (%s); retrying\n",
                   first.what());
      ++deg.stats.load_retries;
      sleep_ms(50);
      try {
        load_mapped();
      } catch (const Error& second) {
        std::fprintf(stderr,
                     "warning: mmap load failed again (%s);"
                     " falling back to copy load\n",
                     second.what());
        ++deg.stats.load_retries;
        load_copy();
      }
    }
  }
  deg.absorb_quarantines(quarantined);
  return out;
}

/// Renders one query's report in the chosen format.
void render(std::ostream& os, const std::string& outfmt,
            const SequenceStore& queries, SeqId q, const DbIndexView& view,
            const QueryResult& result) {
  if (outfmt == "tabular") {
    write_tabular(os, queries.name(q), queries.sequence(q), view, result,
                  blosum62());
  } else if (outfmt == "pairwise") {
    write_pairwise(os, queries.name(q), queries.sequence(q), view, result,
                   blosum62());
  }  // outfmt == "none": suppress the report (e.g. for --stats=json)
}

/// Sharded-mode render: merged results carry GLOBAL original ids, resolved
/// against the ShardSet's reconstructed global-order SequenceStore — the
/// same lines the unsharded view-based render produces.
void render_store(std::ostream& os, const std::string& outfmt,
                  const SequenceStore& queries, SeqId q,
                  const SequenceStore& db, const QueryResult& result) {
  if (outfmt == "tabular") {
    write_tabular(os, queries.name(q), queries.sequence(q), db, result,
                  blosum62());
  } else if (outfmt == "pairwise") {
    write_pairwise(os, queries.name(q), queries.sequence(q), db, result,
                   blosum62());
  }
}

/// Resolves --threads (default: the OpenMP pool size). Returns false (after
/// printing the usage error) on a non-positive or malformed value.
bool parse_threads(int argc, char** argv, int* out) {
  const std::string threads_arg = arg_str(argc, argv, "threads", "");
  long threads_val = omp_get_max_threads();
  if (!threads_arg.empty()) {
    char* endp = nullptr;
    threads_val = std::strtol(threads_arg.c_str(), &endp, 10);
    if (endp == threads_arg.c_str() || *endp != '\0' || threads_val <= 0) {
      std::fprintf(stderr, "error: --threads must be a positive integer"
                   " (got '%s')\n", threads_arg.c_str());
      return false;
    }
  }
  *out = static_cast<int>(threads_val);
  return true;
}

/// Folds one sharded search's degraded report into the run's, deduplicating
/// quarantined shards by id (a load-quarantined shard would otherwise be
/// re-reported by every checkpoint batch).
void absorb_shard_degradation(stats::DegradedStats& into,
                              const stats::DegradedStats& from) {
  for (const stats::QuarantinedShard& q : from.quarantined_shards) {
    bool seen = false;
    for (const stats::QuarantinedShard& have : into.quarantined_shards) {
      if (have.shard == q.shard) {
        seen = true;
        break;
      }
    }
    if (!seen) into.quarantined_shards.push_back(q);
  }
  into.partial = into.partial || from.partial;
}

/// Builds the stats-v1 snapshot of one sharded search call. Per-stage
/// seconds/blocks are per-shard-internal and not meaningful globally, so
/// only the deterministic counters, the wall time and the "shards" object
/// are recorded.
stats::PipelineSnapshot sharded_snapshot(
    const cluster::ShardedSearchResult& res, int threads, double seconds,
    const MuBlastpOptions& options) {
  stats::PipelineSnapshot snap;
  snap.engine = "mublastp-sharded";
  snap.kernel = simd::kernel_name(options.kernel);
  snap.threads = threads;
  snap.queries = res.results.size();
  snap.total_seconds = seconds;
  for (const QueryResult& r : res.results) {
    snap.totals += stats::counters_of(r.stats);
    snap.gapped_kernel.int8_runs += r.stats.gapped_int8_runs;
    snap.gapped_kernel.int16_reruns += r.stats.gapped_int16_reruns;
    snap.gapped_kernel.scalar_fallbacks += r.stats.gapped_scalar_fallbacks;
  }
  snap.shards = res.shards;
  return snap;
}

/// Builds the run's tracer from --trace= / --trace-counters, or a null
/// pointer when tracing is off. (--trace-counters without --trace is
/// rejected in main before either run path starts.)
std::unique_ptr<trace::Tracer> make_tracer(int argc, char** argv) {
  const std::string path = arg_str(argc, argv, "trace", "");
  if (path.empty()) return nullptr;
  trace::TracerOptions opts;
  opts.counters = arg_flag(argc, argv, "trace-counters");
  return std::make_unique<trace::Tracer>(opts);
}

/// Serializes the tracer to --trace=FILE as mublastp-trace-v1. Returns the
/// exit code contribution: 0, or 4 on an unwritable file.
int write_trace_file(trace::Tracer& tracer, const std::string& path,
                     const trace::TraceMeta& meta) {
  const std::string json = trace::to_chrome_json(tracer, meta);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "error: cannot open trace file '%s'\n",
                 path.c_str());
    return 4;
  }
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.put('\n');
  f.flush();
  if (f.bad()) {
    std::fprintf(stderr, "error: write failure on trace file '%s'\n",
                 path.c_str());
    return 4;
  }
  std::fprintf(stderr, "wrote trace: %s (%zu spans, %llu dropped%s)\n",
               path.c_str(), tracer.spans().size(),
               static_cast<unsigned long long>(tracer.dropped()),
               tracer.counters_available() ? ", hardware counters" : "");
  return 0;
}

/// --progress gating: heartbeats are suppressed when stdout or stderr is
/// redirected (they would pollute piped output), unless --progress=force.
bool progress_enabled(int argc, char** argv) {
  const bool bare = arg_flag(argc, argv, "progress");
  const std::string mode =
      arg_str(argc, argv, "progress", bare ? "tty" : "");
  if (mode.empty()) return false;
  if (mode == "force") return true;
  return ::isatty(STDOUT_FILENO) == 1 && ::isatty(STDERR_FILENO) == 1;
}

/// The --progress heartbeat: one stderr line, rewritten in place with \r,
/// fired from the block loop's serial point. The last block ends the line.
struct ProgressPrinter {
  Timer timer;
  void operator()(const MuBlastpOptions::BatchProgress& p) {
    const double elapsed = timer.seconds();
    const double eta =
        p.blocks_done > 0
            ? elapsed / static_cast<double>(p.blocks_done) *
                  static_cast<double>(p.blocks_total - p.blocks_done)
            : 0.0;
    std::fprintf(stderr,
                 "\rprogress: %u/%u blocks, %llu queries, %llu quarantined,"
                 " %.1fs elapsed, ETA %.1fs ",
                 p.blocks_done, p.blocks_total,
                 static_cast<unsigned long long>(p.queries),
                 static_cast<unsigned long long>(p.quarantined_blocks),
                 elapsed, eta);
    if (p.blocks_done == p.blocks_total) std::fputc('\n', stderr);
    std::fflush(stderr);
  }
};

/// RAII for the POSIX output fd used by the checkpointed path (the report
/// stream must be durable before its batch is journaled, which needs
/// fsync — hence a raw fd instead of an ofstream).
struct OutFile {
  int fd = -1;
  ~OutFile() {
    if (fd >= 0) ::close(fd);
  }
};

/// The whole sharded-mode run: load the manifest's shard set, fan out,
/// merge, render, report. Same output plumbing (plain + checkpointed) and
/// the same exit-code contract as the unsharded path.
int run_sharded(int argc, char** argv, const std::string& manifest_path,
                const std::string& query_path, const std::string& outfmt,
                const std::string& stats_mode, const std::string& out_path,
                const std::string& checkpoint_path, bool strict,
                std::size_t batch_size) {
  RunDegradation deg;
  try {
    const cluster::ShardWorkerMode mode = cluster::parse_shard_mode(
        arg_str(argc, argv, "shard-mode", "thread"));

    cluster::ShardSetOptions sopts;
    sopts.params.max_alignments = arg_num(argc, argv, "max-alignments", 25);
    const simd::KernelSpec kspec =
        simd::parse_kernel_spec(arg_str(argc, argv, "kernel", "auto"));
    sopts.engine.kernel = kspec.path;
    sopts.engine.vector_ungapped = kspec.vector_ungapped;
    sopts.strict = strict;
    if (!simd::kernel_supported(sopts.engine.kernel)) {
      std::fprintf(stderr, "error: kernel '%s' is not supported on this"
                   " CPU\n", simd::kernel_name(sopts.engine.kernel));
      return 2;
    }
    int threads = 0;
    if (!parse_threads(argc, argv, &threads)) return 2;

    const std::unique_ptr<trace::Tracer> tracer = make_tracer(argc, argv);
    const bool progress = progress_enabled(argc, argv);

    Timer t;
    const std::uint64_t load_begin =
        tracer != nullptr ? tracer->now_ns() : 0;
    const cluster::ShardSet set =
        cluster::ShardSet::load(manifest_path, sopts, &deg.stats);
    if (tracer != nullptr) {
      tracer->record(trace::SpanKind::kIndexLoad, load_begin,
                     tracer->now_ns());
    }
    std::fprintf(stderr,
                 "loaded shard manifest (%u shards, %s, %s workers):"
                 " %llu sequences, %llu residues (%.2fs)\n",
                 set.shard_count(), strategy_name(set.strategy()),
                 cluster::shard_mode_name(mode),
                 static_cast<unsigned long long>(set.total_sequences()),
                 static_cast<unsigned long long>(set.total_residues()),
                 t.seconds());
    for (const stats::QuarantinedShard& q : deg.stats.quarantined_shards) {
      std::fprintf(stderr, "warning: quarantined shard %u: %s\n", q.shard,
                   q.reason.c_str());
    }

    SequenceStore queries;
    read_fasta_file(query_path, queries);
    std::fprintf(stderr, "read %zu queries\n", queries.size());

    const bool want_stats = !stats_mode.empty();
    t.reset();
    stats::PipelineSnapshot merged_snap;
    if (checkpoint_path.empty()) {
      cluster::ShardedSearchResult res =
          cluster::search_sharded(set, queries, threads, mode, tracer.get());
      absorb_shard_degradation(deg.stats, res.degraded);
      std::fprintf(stderr, "searched in %.2fs (%d thread(s), %u shards)\n",
                   t.seconds(), threads, set.shard_count());

      std::ofstream out_file;
      if (!out_path.empty()) {
        out_file.open(out_path, std::ios::binary | std::ios::trunc);
        MUBLASTP_CHECK_KIND(out_file.good(), ErrorKind::kIo,
                            "cannot open output file: " + out_path);
      }
      std::ostream& os = out_path.empty() ? std::cout : out_file;
      for (SeqId q = 0; q < queries.size(); ++q) {
        render_store(os, outfmt, queries, q, set.global_db(), res.results[q]);
      }
      os.flush();
      MUBLASTP_CHECK_KIND(!os.bad(), ErrorKind::kIo,
                          "write failure on search output");
      if (want_stats) {
        merged_snap =
            sharded_snapshot(res, threads, t.seconds(), sopts.engine);
      }
    } else {
      // Checkpointed sharded run: same durable-output-then-journal protocol
      // as the unsharded path, at shard-batch granularity — every journaled
      // batch's merged output survived any crash.
      const std::uint64_t nq = queries.size();
      const std::uint64_t nbatches = (nq + batch_size - 1) / batch_size;
      std::uint64_t manifest_bytes = 0;
      {
        std::ifstream in(manifest_path,
                         std::ios::binary | std::ios::ate);
        manifest_bytes = static_cast<std::uint64_t>(in.tellg());
      }
      std::uint32_t fp = crc32(&batch_size, sizeof(batch_size));
      fp = crc32(&nq, sizeof(nq), fp);
      fp = crc32(&manifest_bytes, sizeof(manifest_bytes), fp);
      CheckpointJournal journal(checkpoint_path, fp);

      OutFile out;
      out.fd = ::open(out_path.c_str(), O_RDWR | O_CREAT, 0644);
      MUBLASTP_CHECK_KIND(out.fd >= 0, ErrorKind::kIo,
                          "cannot open output file: " + out_path);
      std::uint64_t offset = journal.resume_offset();
      MUBLASTP_CHECK_KIND(
          ::ftruncate(out.fd, static_cast<off_t>(offset)) == 0,
          ErrorKind::kIo, "cannot truncate output file: " + out_path);
      MUBLASTP_CHECK_KIND(
          ::lseek(out.fd, static_cast<off_t>(offset), SEEK_SET) >= 0,
          ErrorKind::kIo, "cannot seek output file: " + out_path);
      if (journal.num_completed() != 0) {
        std::fprintf(stderr,
                     "resuming: %zu of %llu batches already complete"
                     " (output offset %llu)\n",
                     journal.num_completed(),
                     static_cast<unsigned long long>(nbatches),
                     static_cast<unsigned long long>(offset));
      }

      for (std::uint64_t b = 0; b < nbatches; ++b) {
        if (journal.completed(b)) continue;
        const SeqId begin = static_cast<SeqId>(b * batch_size);
        const SeqId end =
            static_cast<SeqId>(std::min<std::uint64_t>(nq,
                                                       (b + 1) * batch_size));
        SequenceStore batch;
        for (SeqId q = begin; q < end; ++q) {
          batch.add(queries.sequence(q), queries.name(q));
        }
        Timer bt;
        if (tracer != nullptr) {
          tracer->set_batch(static_cast<std::uint32_t>(b));
        }
        cluster::ShardedSearchResult res =
            cluster::search_sharded(set, batch, threads, mode, tracer.get());
        absorb_shard_degradation(deg.stats, res.degraded);

        std::ostringstream os;
        for (SeqId q = begin; q < end; ++q) {
          render_store(os, outfmt, queries, q, set.global_db(),
                       res.results[q - begin]);
        }
        const std::string bytes = os.str();
        std::size_t written = 0;
        while (written < bytes.size()) {
          const ssize_t n = ::write(out.fd, bytes.data() + written,
                                    bytes.size() - written);
          MUBLASTP_CHECK_KIND(n >= 0, ErrorKind::kIo,
                              "write failure on output file: " + out_path);
          written += static_cast<std::size_t>(n);
        }
        MUBLASTP_CHECK_KIND(::fsync(out.fd) == 0, ErrorKind::kIo,
                            "fsync failure on output file: " + out_path);
        offset += bytes.size();
        journal.append(b, offset);
        if (want_stats) {
          merged_snap.merge(
              sharded_snapshot(res, threads, bt.seconds(), sopts.engine));
        }
        if (progress) {
          // Sharded runs have no global block loop; the heartbeat ticks at
          // checkpoint-batch granularity instead.
          std::fprintf(stderr,
                       "\rprogress: %llu/%llu batches, %zu shard(s)"
                       " quarantined, %.1fs elapsed ",
                       static_cast<unsigned long long>(b + 1),
                       static_cast<unsigned long long>(nbatches),
                       deg.stats.quarantined_shards.size(), t.seconds());
          if (b + 1 == nbatches) std::fputc('\n', stderr);
          std::fflush(stderr);
        }
      }
      std::fprintf(stderr, "searched in %.2fs (%d thread(s), %u shards)\n",
                   t.seconds(), threads, set.shard_count());
    }

    if (tracer != nullptr && want_stats) {
      tracer->flush();
      merged_snap.perf_counters = tracer->perf_totals();
    }
    if (tracer != nullptr) {
      trace::TraceMeta meta;
      meta.engine = "mublastp-sharded";
      meta.kernel = simd::kernel_name(sopts.engine.kernel);
      meta.threads = threads;
      meta.shards = set.shard_count();
      const int rc = write_trace_file(
          *tracer, arg_str(argc, argv, "trace", ""), meta);
      if (rc != 0) return rc;
    }

    if (want_stats) {
      merged_snap.degraded = deg.stats;
      if (stats_mode == "json") {
        const std::string json = stats::to_json(merged_snap);
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
      } else {
        stats::print_table(stderr, merged_snap);
      }
    }
    if (deg.stats.partial) {
      std::fprintf(stderr,
                   "warning: results are PARTIAL (%zu shard(s)"
                   " quarantined)\n",
                   deg.stats.quarantined_shards.size());
      return 3;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// Builds the stats-v1 snapshot of one generation-chain search call. Like
/// sharded_snapshot: per-stage seconds/blocks are member-internal, so only
/// the deterministic counters (bit-identical to a from-scratch rebuild)
/// and the wall time are recorded.
stats::PipelineSnapshot chain_snapshot(const cluster::ChainSearchResult& res,
                                       int threads, double seconds,
                                       const MuBlastpOptions& options) {
  stats::PipelineSnapshot snap;
  snap.engine = "mublastp-chain";
  snap.kernel = simd::kernel_name(options.kernel);
  snap.threads = threads;
  snap.queries = res.results.size();
  snap.total_seconds = seconds;
  for (const QueryResult& r : res.results) {
    snap.totals += stats::counters_of(r.stats);
    snap.gapped_kernel.int8_runs += r.stats.gapped_int8_runs;
    snap.gapped_kernel.int16_reruns += r.stats.gapped_int16_reruns;
    snap.gapped_kernel.scalar_fallbacks += r.stats.gapped_scalar_fallbacks;
  }
  return snap;
}

/// Folds one chain search's degraded report into the run's (same dedup
/// logic as shards; quarantined "shards" here are chain member slots).
void absorb_chain_degradation(stats::DegradedStats& into,
                              const stats::DegradedStats& from) {
  absorb_shard_degradation(into, from);
  for (const stats::QuarantinedBlock& q : from.quarantined) {
    bool seen = false;
    for (const stats::QuarantinedBlock& have : into.quarantined) {
      if (have.block == q.block && have.reason == q.reason) {
        seen = true;
        break;
      }
    }
    if (!seen) into.quarantined.push_back(q);
  }
  into.load_retries += from.load_retries;
  into.time_budget_trips += from.time_budget_trips;
  into.mem_budget_trips += from.mem_budget_trips;
}

/// The whole generation-chain run (--index resolving to a multi-member
/// MUGEN01 generation): load every member, search them sequentially with
/// the full thread budget, merge, render, report. Output is bit-identical
/// to searching a from-scratch rebuild of the same database (the same
/// disjoint-partition argument as sharding; see docs/INCREMENTAL.md).
int run_chain(int argc, char** argv, const std::string& base_path,
              const std::string& query_path, const std::string& outfmt,
              const std::string& stats_mode, const std::string& out_path,
              const std::string& checkpoint_path, bool strict,
              std::size_t batch_size) {
  RunDegradation deg;
  try {
    cluster::GenChainOptions copts;
    copts.params.max_alignments = arg_num(argc, argv, "max-alignments", 25);
    const simd::KernelSpec kspec =
        simd::parse_kernel_spec(arg_str(argc, argv, "kernel", "auto"));
    copts.engine.kernel = kspec.path;
    copts.engine.vector_ungapped = kspec.vector_ungapped;
    copts.strict = strict;
    if (!simd::kernel_supported(copts.engine.kernel)) {
      std::fprintf(stderr, "error: kernel '%s' is not supported on this"
                   " CPU\n", simd::kernel_name(copts.engine.kernel));
      return 2;
    }
    int threads = 0;
    if (!parse_threads(argc, argv, &threads)) return 2;
    const bool want_stats = !stats_mode.empty();

    const std::unique_ptr<trace::Tracer> tracer = make_tracer(argc, argv);

    Timer t;
    const std::uint64_t load_begin =
        tracer != nullptr ? tracer->now_ns() : 0;
    const cluster::GenerationChain chain =
        cluster::GenerationChain::load(base_path, copts, &deg.stats);
    if (tracer != nullptr) {
      tracer->record(trace::SpanKind::kIndexLoad, load_begin,
                     tracer->now_ns());
    }
    std::fprintf(stderr,
                 "loaded generation %u chain (%u member(s)):"
                 " %llu sequences, %llu residues (%.2fs)\n",
                 chain.generation(), chain.member_count(),
                 static_cast<unsigned long long>(chain.total_sequences()),
                 static_cast<unsigned long long>(chain.total_residues()),
                 t.seconds());
    for (const stats::QuarantinedShard& q : deg.stats.quarantined_shards) {
      std::fprintf(stderr, "warning: quarantined chain member %u: %s\n",
                   q.shard, q.reason.c_str());
    }
    for (const stats::QuarantinedBlock& q : deg.stats.quarantined) {
      std::fprintf(stderr, "warning: quarantined block %u: %s\n", q.block,
                   q.reason.c_str());
    }

    SequenceStore queries;
    read_fasta_file(query_path, queries);
    std::fprintf(stderr, "read %zu queries\n", queries.size());
    t.reset();

    stats::PipelineSnapshot merged_snap;
    if (checkpoint_path.empty()) {
      cluster::ChainSearchResult res =
          cluster::search_chain(chain, queries, threads, tracer.get());
      absorb_chain_degradation(deg.stats, res.degraded);
      std::fprintf(stderr,
                   "searched in %.2fs (%d thread(s), %u chain member(s))\n",
                   t.seconds(), threads, chain.member_count());

      std::ofstream out_file;
      if (!out_path.empty()) {
        out_file.open(out_path, std::ios::binary | std::ios::trunc);
        MUBLASTP_CHECK_KIND(out_file.good(), ErrorKind::kIo,
                            "cannot open output file: " + out_path);
      }
      std::ostream& os = out_path.empty() ? std::cout : out_file;
      for (SeqId q = 0; q < queries.size(); ++q) {
        render_store(os, outfmt, queries, q, chain.global_db(),
                     res.results[q]);
      }
      os.flush();
      MUBLASTP_CHECK_KIND(!os.bad(), ErrorKind::kIo,
                          "write failure on search output");
      if (want_stats) {
        merged_snap = chain_snapshot(res, threads, t.seconds(),
                                     chain.options().engine);
      }
    } else {
      // Checkpointed chain run: the same durable-output-then-journal
      // protocol as the other two paths, at batch granularity.
      const std::uint64_t nq = queries.size();
      const std::uint64_t nbatches = (nq + batch_size - 1) / batch_size;
      const std::uint32_t generation = chain.generation();
      std::uint32_t fp = crc32(&batch_size, sizeof(batch_size));
      fp = crc32(&nq, sizeof(nq), fp);
      fp = crc32(&generation, sizeof(generation), fp);
      CheckpointJournal journal(checkpoint_path, fp);

      OutFile out;
      out.fd = ::open(out_path.c_str(), O_RDWR | O_CREAT, 0644);
      MUBLASTP_CHECK_KIND(out.fd >= 0, ErrorKind::kIo,
                          "cannot open output file: " + out_path);
      std::uint64_t offset = journal.resume_offset();
      MUBLASTP_CHECK_KIND(
          ::ftruncate(out.fd, static_cast<off_t>(offset)) == 0,
          ErrorKind::kIo, "cannot truncate output file: " + out_path);
      MUBLASTP_CHECK_KIND(
          ::lseek(out.fd, static_cast<off_t>(offset), SEEK_SET) >= 0,
          ErrorKind::kIo, "cannot seek output file: " + out_path);
      if (journal.num_completed() != 0) {
        std::fprintf(stderr,
                     "resuming: %zu of %llu batches already complete"
                     " (output offset %llu)\n",
                     journal.num_completed(),
                     static_cast<unsigned long long>(nbatches),
                     static_cast<unsigned long long>(offset));
      }

      for (std::uint64_t b = 0; b < nbatches; ++b) {
        if (journal.completed(b)) continue;
        const SeqId begin = static_cast<SeqId>(b * batch_size);
        const SeqId end =
            static_cast<SeqId>(std::min<std::uint64_t>(nq,
                                                       (b + 1) * batch_size));
        SequenceStore batch;
        for (SeqId q = begin; q < end; ++q) {
          batch.add(queries.sequence(q), queries.name(q));
        }
        Timer bt;
        if (tracer != nullptr) {
          tracer->set_batch(static_cast<std::uint32_t>(b));
        }
        cluster::ChainSearchResult res =
            cluster::search_chain(chain, batch, threads, tracer.get());
        absorb_chain_degradation(deg.stats, res.degraded);

        std::ostringstream os;
        for (SeqId q = begin; q < end; ++q) {
          render_store(os, outfmt, queries, q, chain.global_db(),
                       res.results[q - begin]);
        }
        const std::string bytes = os.str();
        std::size_t written = 0;
        while (written < bytes.size()) {
          const ssize_t n = ::write(out.fd, bytes.data() + written,
                                    bytes.size() - written);
          MUBLASTP_CHECK_KIND(n >= 0, ErrorKind::kIo,
                              "write failure on output file: " + out_path);
          written += static_cast<std::size_t>(n);
        }
        MUBLASTP_CHECK_KIND(::fsync(out.fd) == 0, ErrorKind::kIo,
                            "fsync failure on output file: " + out_path);
        offset += bytes.size();
        journal.append(b, offset);
        if (want_stats) {
          merged_snap.merge(chain_snapshot(res, threads, bt.seconds(),
                                           chain.options().engine));
        }
      }
      std::fprintf(stderr,
                   "searched in %.2fs (%d thread(s), %u chain member(s))\n",
                   t.seconds(), threads, chain.member_count());
    }

    if (tracer != nullptr && want_stats) {
      tracer->flush();
      merged_snap.perf_counters = tracer->perf_totals();
    }
    if (tracer != nullptr) {
      trace::TraceMeta meta;
      meta.engine = "mublastp-chain";
      meta.kernel = simd::kernel_name(chain.options().engine.kernel);
      meta.threads = threads;
      meta.shards = chain.member_count();
      const int rc = write_trace_file(
          *tracer, arg_str(argc, argv, "trace", ""), meta);
      if (rc != 0) return rc;
    }

    if (want_stats) {
      merged_snap.degraded = deg.stats;
      if (stats_mode == "json") {
        const std::string json = stats::to_json(merged_snap);
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
      } else {
        stats::print_table(stderr, merged_snap);
      }
    }
    if (deg.stats.partial) {
      std::fprintf(stderr,
                   "warning: results are PARTIAL (%zu member(s), %zu"
                   " block(s) quarantined)\n",
                   deg.stats.quarantined_shards.size(),
                   deg.stats.quarantined.size());
      return 3;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string index_path = arg_str(argc, argv, "index", "");
  const std::string manifest_path =
      arg_str(argc, argv, "shards-manifest", "");
  const std::string query_path = arg_str(argc, argv, "query", "");
  const std::string outfmt = arg_str(argc, argv, "outfmt", "pairwise");
  const std::string stats_mode =
      arg_flag(argc, argv, "stats") ? "table"
                                    : arg_str(argc, argv, "stats", "");
  const std::string inject = arg_str(argc, argv, "inject", "");
  const std::string out_path = arg_str(argc, argv, "out", "");
  const std::string checkpoint_path = arg_str(argc, argv, "checkpoint", "");
  const bool strict = arg_flag(argc, argv, "strict");
  const bool force_mmap = arg_flag(argc, argv, "mmap");
  const bool force_copy = arg_flag(argc, argv, "no-mmap");
  if ((index_path.empty() == manifest_path.empty()) ||
      query_path.empty()) {
    std::fprintf(stderr,
                 "usage: mublastp_search (--index=db.mbi |"
                 " --shards-manifest=db.mbi [--shard-mode=thread|process])"
                 " --query=q.fasta"
                 " [--threads=N] [--outfmt=pairwise|tabular|none]"
                 " [--max-alignments=25] [--stats[=json]]"
                 " [--mmap|--no-mmap]"
                 " [--kernel=auto|scalar|sse42|avx2[+ungapped]]"
                 " [--strict] [--inject=site:Nth]"
                 " [--time-budget=SEC] [--mem-budget-mb=N]"
                 " [--out=FILE] [--checkpoint=FILE] [--batch-size=16]"
                 " [--trace=FILE] [--trace-counters]"
                 " [--progress[=force]]\n");
    return 2;
  }
  if (force_mmap && force_copy) {
    std::fprintf(stderr, "error: --mmap and --no-mmap are exclusive\n");
    return 2;
  }
  if (!stats_mode.empty() && stats_mode != "table" && stats_mode != "json") {
    std::fprintf(stderr, "error: unknown --stats mode '%s'"
                 " (expected --stats or --stats=json)\n", stats_mode.c_str());
    return 2;
  }
  if (outfmt != "pairwise" && outfmt != "tabular" && outfmt != "none") {
    std::fprintf(stderr, "error: unknown --outfmt '%s'"
                 " (expected pairwise, tabular or none)\n", outfmt.c_str());
    return 2;
  }
  if (!checkpoint_path.empty() && out_path.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint requires --out=FILE (resume truncates"
                 " the output back to the last durable batch)\n");
    return 2;
  }
  if (arg_flag(argc, argv, "trace-counters") &&
      arg_str(argc, argv, "trace", "").empty()) {
    std::fprintf(stderr, "error: --trace-counters requires --trace=FILE\n");
    return 2;
  }
  {
    const std::string progress_mode = arg_str(argc, argv, "progress", "");
    if (!progress_mode.empty() && progress_mode != "force") {
      std::fprintf(stderr, "error: unknown --progress mode '%s'"
                   " (expected --progress or --progress=force)\n",
                   progress_mode.c_str());
      return 2;
    }
  }
  const std::size_t batch_size = arg_num(argc, argv, "batch-size", 16);
  if (batch_size == 0) {
    std::fprintf(stderr, "error: --batch-size must be positive\n");
    return 2;
  }
  if (!inject.empty()) {
    try {
      fi::arm_from_spec(inject);
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "error: bad --inject spec '%s': %s"
                   " (see docs/ROBUSTNESS.md for the site registry)\n",
                   inject.c_str(), e.what());
      return 2;
    }
  }
  const double time_budget =
      std::strtod(arg_str(argc, argv, "time-budget", "0").c_str(), nullptr);
  const std::size_t mem_budget_mb = arg_num(argc, argv, "mem-budget-mb", 0);

  if (!manifest_path.empty()) {
    return run_sharded(argc, argv, manifest_path, query_path, outfmt,
                       stats_mode, out_path, checkpoint_path, strict,
                       batch_size);
  }

  // Generation resolution: --index transparently follows the newest
  // published MUGEN01 generation (mublastp_makedb --append / --compact;
  // see docs/INCREMENTAL.md). No manifest → the classic single-file path
  // below, untouched. A single-member generation (e.g. right after
  // --compact) routes its member file through the full single-index
  // machinery (mmap, degraded mode, checkpointing). A multi-member chain
  // gets the chain runner. A corrupt newest manifest fails closed (exit 5)
  // — silently searching a stale generation would be worse than failing.
  std::string effective_index = index_path;
  try {
    const ResolvedGeneration resolved = resolve_generations(index_path);
    if (resolved.manifest.has_value()) {
      if (!resolved.orphan_temps.empty()) {
        std::fprintf(stderr,
                     "warning: %zu orphaned temp file(s) from a crashed"
                     " build next to '%s' (the next mublastp_makedb"
                     " --append or --compact removes them)\n",
                     resolved.orphan_temps.size(), index_path.c_str());
      }
      if (resolved.member_paths.size() > 1) {
        return run_chain(argc, argv, index_path, query_path, outfmt,
                         stats_mode, out_path, checkpoint_path, strict,
                         batch_size);
      }
      effective_index = resolved.member_paths[0];
      std::fprintf(stderr, "resolved generation %u: %s\n",
                   resolved.generation, effective_index.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  }
  const std::string& index_file = effective_index;

  // Fail fast with a precise message on an unreadable index path; the binary
  // loader's own errors are kept for files that exist but are corrupt.
  if (!std::ifstream(index_file, std::ios::binary).good()) {
    std::fprintf(stderr, "error: cannot read index file '%s'"
                 " (missing file or insufficient permissions)\n",
                 index_file.c_str());
    return 2;
  }

  RunDegradation deg;
  try {
    const std::unique_ptr<trace::Tracer> tracer = make_tracer(argc, argv);

    // Pick the load path: v3 files are mapped unless --no-mmap; v2 files
    // only have the copy loader. The probe reads just header + table.
    const DbIndexFileInfo info = describe_db_index_file(index_file);
    const bool use_mmap =
        force_mmap || (!force_copy && info.version >= kDbIndexFormatVersion);
    if (force_mmap && info.version < kDbIndexFormatVersion) {
      std::fprintf(stderr,
                   "error: --mmap requires a format v%u index; '%s' is v%u"
                   " (rebuild it with mublastp_makedb)\n",
                   kDbIndexFormatVersion, index_file.c_str(), info.version);
      return 2;
    }

    Timer t;
    const std::uint64_t load_begin =
        tracer != nullptr ? tracer->now_ns() : 0;
    const LoadedIndex loaded =
        load_index(index_file, use_mmap, strict, deg);
    if (tracer != nullptr) {
      tracer->record(trace::SpanKind::kIndexLoad, load_begin,
                     tracer->now_ns());
    }
    const DbIndexView view = loaded.view();
    stats::IndexLoadStats load_stats;
    load_stats.mode = loaded.mode;
    load_stats.load_seconds = t.seconds();
    load_stats.file_bytes = info.file_bytes;
    load_stats.resident_bytes =
        loaded.mapped ? loaded.mapped->resident_bytes() : 0;
    std::fprintf(stderr,
                 "loaded index (%s, v%u): %zu sequences, %zu blocks"
                 " (%.2fs)\n",
                 load_stats.mode.c_str(), info.version, view.num_sequences(),
                 view.blocks().size(), load_stats.load_seconds);
    for (const stats::QuarantinedBlock& q : deg.stats.quarantined) {
      std::fprintf(stderr, "warning: quarantined block %u: %s\n", q.block,
                   q.reason.c_str());
    }

    SequenceStore queries;
    read_fasta_file(query_path, queries);
    std::fprintf(stderr, "read %zu queries\n", queries.size());

    SearchParams params;
    params.max_alignments = arg_num(argc, argv, "max-alignments", 25);
    MuBlastpOptions options;
    const simd::KernelSpec kspec =
        simd::parse_kernel_spec(arg_str(argc, argv, "kernel", "auto"));
    options.kernel = kspec.path;
    options.vector_ungapped = kspec.vector_ungapped;
    options.time_budget_seconds = time_budget;
    options.mem_budget_bytes =
        static_cast<std::uint64_t>(mem_budget_mb) << 20;
    if (progress_enabled(argc, argv)) options.progress = ProgressPrinter{};
    if (!simd::kernel_supported(options.kernel)) {
      std::fprintf(stderr, "error: kernel '%s' is not supported on this"
                   " CPU\n", simd::kernel_name(options.kernel));
      return 2;
    }
    const MuBlastpEngine engine(view, params, options);
    std::fprintf(stderr, "kernel: %s%s\n", simd::kernel_name(options.kernel),
                 options.vector_ungapped ? "+ungapped" : "");

    // Default to the OpenMP pool size; reject nonsense explicitly rather
    // than letting a "-1" silently become a huge unsigned value.
    const std::string threads_arg = arg_str(argc, argv, "threads", "");
    long threads_val = omp_get_max_threads();
    if (!threads_arg.empty()) {
      char* endp = nullptr;
      threads_val = std::strtol(threads_arg.c_str(), &endp, 10);
      if (endp == threads_arg.c_str() || *endp != '\0' || threads_val <= 0) {
        std::fprintf(stderr, "error: --threads must be a positive integer"
                     " (got '%s')\n", threads_arg.c_str());
        return 2;
      }
    }
    const int threads = static_cast<int>(threads_val);
    const bool want_stats = !stats_mode.empty();
    stats::DegradedStats* deg_sink = strict ? nullptr : &deg.stats;

    t.reset();
    stats::PipelineSnapshot merged_snap;
    if (checkpoint_path.empty()) {
      // Plain path: one batch over all queries, reports to --out or stdout.
      stats::PipelineStats pipeline_stats;
      const std::vector<QueryResult> results = engine.search_batch(
          queries, threads, want_stats ? &pipeline_stats : nullptr, deg_sink,
          tracer.get());
      std::fprintf(stderr, "searched in %.2fs (%d thread(s))\n", t.seconds(),
                   threads);

      std::ofstream out_file;
      if (!out_path.empty()) {
        out_file.open(out_path, std::ios::binary | std::ios::trunc);
        MUBLASTP_CHECK_KIND(out_file.good(), ErrorKind::kIo,
                            "cannot open output file: " + out_path);
      }
      std::ostream& os = out_path.empty() ? std::cout : out_file;
      // Results carry ORIGINAL database ids; the view overloads of the
      // report writers resolve residues/names through the index's id maps,
      // so both the owned and the mapped form report identically.
      for (SeqId q = 0; q < queries.size(); ++q) {
        render(os, outfmt, queries, q, view, results[q]);
      }
      os.flush();
      MUBLASTP_CHECK_KIND(!os.bad(), ErrorKind::kIo,
                          "write failure on search output");
      if (want_stats) merged_snap = pipeline_stats.snapshot();
    } else {
      // Checkpointed batch runner: queries are processed in fixed batches;
      // each batch's report bytes are made durable (write + fsync) BEFORE
      // the batch id is journaled, so every journaled batch's output
      // survived any crash and resuming is bit-identical to a clean run.
      const std::uint64_t nq = queries.size();
      const std::uint64_t nbatches = (nq + batch_size - 1) / batch_size;
      // Fingerprint ties the journal to this (index, query-set, batching)
      // configuration; resuming under any other combination is an error.
      std::uint32_t fp = crc32(&batch_size, sizeof(batch_size));
      fp = crc32(&nq, sizeof(nq), fp);
      fp = crc32(&info.file_bytes, sizeof(info.file_bytes), fp);
      CheckpointJournal journal(checkpoint_path, fp);

      OutFile out;
      out.fd = ::open(out_path.c_str(), O_RDWR | O_CREAT, 0644);
      MUBLASTP_CHECK_KIND(out.fd >= 0, ErrorKind::kIo,
                          "cannot open output file: " + out_path);
      // Drop any bytes from a batch that was mid-write when a previous run
      // died; everything before resume_offset is journaled-durable output.
      std::uint64_t offset = journal.resume_offset();
      MUBLASTP_CHECK_KIND(
          ::ftruncate(out.fd, static_cast<off_t>(offset)) == 0,
          ErrorKind::kIo, "cannot truncate output file: " + out_path);
      MUBLASTP_CHECK_KIND(
          ::lseek(out.fd, static_cast<off_t>(offset), SEEK_SET) >= 0,
          ErrorKind::kIo, "cannot seek output file: " + out_path);
      if (journal.num_completed() != 0) {
        std::fprintf(stderr,
                     "resuming: %zu of %llu batches already complete"
                     " (output offset %llu)\n",
                     journal.num_completed(),
                     static_cast<unsigned long long>(nbatches),
                     static_cast<unsigned long long>(offset));
      }

      for (std::uint64_t b = 0; b < nbatches; ++b) {
        if (journal.completed(b)) continue;
        const SeqId begin = static_cast<SeqId>(b * batch_size);
        const SeqId end =
            static_cast<SeqId>(std::min<std::uint64_t>(nq,
                                                       (b + 1) * batch_size));
        SequenceStore batch;
        for (SeqId q = begin; q < end; ++q) {
          batch.add(queries.sequence(q), queries.name(q));
        }
        stats::PipelineStats pipeline_stats;
        if (tracer != nullptr) {
          tracer->set_batch(static_cast<std::uint32_t>(b));
        }
        const std::vector<QueryResult> results = engine.search_batch(
            batch, threads, want_stats ? &pipeline_stats : nullptr, deg_sink,
            tracer.get());

        std::ostringstream os;
        for (SeqId q = begin; q < end; ++q) {
          render(os, outfmt, queries, q, view, results[q - begin]);
        }
        const std::string bytes = os.str();
        std::size_t written = 0;
        while (written < bytes.size()) {
          const ssize_t n = ::write(out.fd, bytes.data() + written,
                                    bytes.size() - written);
          MUBLASTP_CHECK_KIND(n >= 0, ErrorKind::kIo,
                              "write failure on output file: " + out_path);
          written += static_cast<std::size_t>(n);
        }
        MUBLASTP_CHECK_KIND(::fsync(out.fd) == 0, ErrorKind::kIo,
                            "fsync failure on output file: " + out_path);
        offset += bytes.size();
        journal.append(b, offset);
        if (want_stats) merged_snap.merge(pipeline_stats.snapshot());
      }
      std::fprintf(stderr, "searched in %.2fs (%d thread(s))\n", t.seconds(),
                   threads);
    }

    if (tracer != nullptr && want_stats) {
      tracer->flush();
      merged_snap.perf_counters = tracer->perf_totals();
    }
    if (tracer != nullptr) {
      trace::TraceMeta meta;
      meta.engine = "mublastp";
      meta.kernel = simd::kernel_name(options.kernel);
      meta.threads = threads;
      const int rc = write_trace_file(
          *tracer, arg_str(argc, argv, "trace", ""), meta);
      if (rc != 0) return rc;
    }

    if (want_stats) {
      merged_snap.index_load = load_stats;
      merged_snap.degraded = deg.stats;
      if (stats_mode == "json") {
        const std::string json = stats::to_json(merged_snap);
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
      } else {
        stats::print_table(stderr, merged_snap);
      }
    }
    if (deg.stats.partial) {
      std::fprintf(stderr,
                   "warning: results are PARTIAL (%zu block(s) quarantined,"
                   " %llu time-budget trip(s))\n",
                   deg.stats.quarantined.size(),
                   static_cast<unsigned long long>(
                       deg.stats.time_budget_trips));
      return 3;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
