// mublastp_search: search FASTA queries against a saved index — the
// "blastp" step of the database-indexed workflow.
//
// Usage:
//   mublastp_search --index=db.mbi --query=q.fasta [--threads=N]
//                   [--outfmt=pairwise|tabular] [--max-alignments=K]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index_io.hpp"
#include "report/report.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string index_path = arg_str(argc, argv, "index", "");
  const std::string query_path = arg_str(argc, argv, "query", "");
  const std::string outfmt = arg_str(argc, argv, "outfmt", "pairwise");
  if (index_path.empty() || query_path.empty()) {
    std::fprintf(stderr,
                 "usage: mublastp_search --index=db.mbi --query=q.fasta"
                 " [--threads=1] [--outfmt=pairwise|tabular]"
                 " [--max-alignments=25]\n");
    return 2;
  }

  try {
    Timer t;
    const DbIndex index = load_db_index_file(index_path);
    std::fprintf(stderr, "loaded index: %zu sequences, %zu blocks (%.2fs)\n",
                 index.db().size(), index.blocks().size(), t.seconds());

    SequenceStore queries;
    read_fasta_file(query_path, queries);
    std::fprintf(stderr, "read %zu queries\n", queries.size());

    SearchParams params;
    params.max_alignments = arg_num(argc, argv, "max-alignments", 25);
    const MuBlastpEngine engine(index, params);
    const int threads = static_cast<int>(arg_num(argc, argv, "threads", 1));

    t.reset();
    const std::vector<QueryResult> results =
        engine.search_batch(queries, threads);
    std::fprintf(stderr, "searched in %.2fs (%d thread(s))\n", t.seconds(),
                 threads);

    // Results come back against the index's ORIGINAL ids; for reporting we
    // need names/residues from the store the engine searched — the sorted
    // store inside the index, addressed through the id maps.
    const SequenceStore& db = index.db();
    for (SeqId q = 0; q < queries.size(); ++q) {
      // Remap subjects to sorted-store ids so report lookups are direct.
      QueryResult r = results[q];
      for (GappedAlignment& a : r.alignments) {
        a.subject = index.sorted_id(a.subject);
      }
      if (outfmt == "tabular") {
        write_tabular(std::cout, queries.name(q), queries.sequence(q), db, r,
                      blosum62());
      } else {
        write_pairwise(std::cout, queries.name(q), queries.sequence(q), db, r,
                       blosum62());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
