// mublastp_search: search FASTA queries against a saved index — the
// "blastp" step of the database-indexed workflow.
//
// Usage:
//   mublastp_search --index=db.mbi --query=q.fasta [--threads=N]
//                   [--outfmt=pairwise|tabular|none] [--max-alignments=K]
//                   [--stats[=json]] [--mmap|--no-mmap]
//                   [--kernel=auto|scalar|sse42|avx2]
//
// --threads defaults to the OpenMP thread pool size (omp_get_max_threads);
// non-positive values are rejected. --kernel selects the ungapped-extension
// kernel ("auto" = best the CPU supports, the default); results are
// bit-identical for every kernel.
//
// Index loading: v3 index files are memory-mapped by default (zero-copy;
// pages shared with other processes serving the same database), v2 files
// are copy-loaded. --mmap forces the mapped path (errors on v2 files);
// --no-mmap forces the copy loader for either version.
//
// --stats prints a human-readable pipeline-telemetry table to stderr;
// --stats=json emits the machine-readable snapshot (schema
// "mublastp-stats-v1", see docs/ALGORITHMS.md) to stdout, including an
// "index" object recording the load mode/time/residency. Combine
// --stats=json with --outfmt=none for a stdout that is pure JSON.
#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "simd/dispatch.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index_io.hpp"
#include "index/mapped_db_index.hpp"
#include "report/report.hpp"
#include "stats/stats.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string index_path = arg_str(argc, argv, "index", "");
  const std::string query_path = arg_str(argc, argv, "query", "");
  const std::string outfmt = arg_str(argc, argv, "outfmt", "pairwise");
  const std::string stats_mode =
      arg_flag(argc, argv, "stats") ? "table"
                                    : arg_str(argc, argv, "stats", "");
  const bool force_mmap = arg_flag(argc, argv, "mmap");
  const bool force_copy = arg_flag(argc, argv, "no-mmap");
  if (index_path.empty() || query_path.empty()) {
    std::fprintf(stderr,
                 "usage: mublastp_search --index=db.mbi --query=q.fasta"
                 " [--threads=N] [--outfmt=pairwise|tabular|none]"
                 " [--max-alignments=25] [--stats[=json]]"
                 " [--mmap|--no-mmap] [--kernel=auto|scalar|sse42|avx2]\n");
    return 2;
  }
  if (force_mmap && force_copy) {
    std::fprintf(stderr, "error: --mmap and --no-mmap are exclusive\n");
    return 2;
  }
  if (!stats_mode.empty() && stats_mode != "table" && stats_mode != "json") {
    std::fprintf(stderr, "error: unknown --stats mode '%s'"
                 " (expected --stats or --stats=json)\n", stats_mode.c_str());
    return 2;
  }
  if (outfmt != "pairwise" && outfmt != "tabular" && outfmt != "none") {
    std::fprintf(stderr, "error: unknown --outfmt '%s'"
                 " (expected pairwise, tabular or none)\n", outfmt.c_str());
    return 2;
  }
  // Fail fast with a precise message on an unreadable index path; the binary
  // loader's own errors are kept for files that exist but are corrupt.
  if (!std::ifstream(index_path, std::ios::binary).good()) {
    std::fprintf(stderr, "error: cannot read index file '%s'"
                 " (missing file or insufficient permissions)\n",
                 index_path.c_str());
    return 2;
  }

  try {
    // Pick the load path: v3 files are mapped unless --no-mmap; v2 files
    // only have the copy loader. The probe reads just header + table.
    const DbIndexFileInfo info = describe_db_index_file(index_path);
    const bool use_mmap =
        force_mmap || (!force_copy && info.version >= kDbIndexFormatVersion);
    if (force_mmap && info.version < kDbIndexFormatVersion) {
      std::fprintf(stderr,
                   "error: --mmap requires a format v%u index; '%s' is v%u"
                   " (rebuild it with mublastp_makedb)\n",
                   kDbIndexFormatVersion, index_path.c_str(), info.version);
      return 2;
    }

    Timer t;
    std::optional<MappedDbIndex> mapped;
    std::optional<DbIndex> owned;
    if (use_mmap) {
      mapped.emplace(index_path);
    } else {
      owned.emplace(load_db_index_file(index_path));
    }
    const DbIndexView view = mapped ? DbIndexView(*mapped)
                                    : DbIndexView(*owned);
    stats::IndexLoadStats load_stats;
    load_stats.mode = use_mmap ? "mmap" : "copy";
    load_stats.load_seconds = t.seconds();
    load_stats.file_bytes = info.file_bytes;
    load_stats.resident_bytes = mapped ? mapped->resident_bytes() : 0;
    std::fprintf(stderr,
                 "loaded index (%s, v%u): %zu sequences, %zu blocks"
                 " (%.2fs)\n",
                 load_stats.mode.c_str(), info.version, view.num_sequences(),
                 view.blocks().size(), load_stats.load_seconds);

    SequenceStore queries;
    read_fasta_file(query_path, queries);
    std::fprintf(stderr, "read %zu queries\n", queries.size());

    SearchParams params;
    params.max_alignments = arg_num(argc, argv, "max-alignments", 25);
    MuBlastpOptions options;
    options.kernel = simd::parse_kernel(arg_str(argc, argv, "kernel", "auto"));
    if (!simd::kernel_supported(options.kernel)) {
      std::fprintf(stderr, "error: kernel '%s' is not supported on this"
                   " CPU\n", simd::kernel_name(options.kernel));
      return 2;
    }
    const MuBlastpEngine engine(view, params, options);
    std::fprintf(stderr, "kernel: %s\n", simd::kernel_name(options.kernel));

    // Default to the OpenMP pool size; reject nonsense explicitly rather
    // than letting a "-1" silently become a huge unsigned value.
    const std::string threads_arg = arg_str(argc, argv, "threads", "");
    long threads_val = omp_get_max_threads();
    if (!threads_arg.empty()) {
      char* endp = nullptr;
      threads_val = std::strtol(threads_arg.c_str(), &endp, 10);
      if (endp == threads_arg.c_str() || *endp != '\0' || threads_val <= 0) {
        std::fprintf(stderr, "error: --threads must be a positive integer"
                     " (got '%s')\n", threads_arg.c_str());
        return 2;
      }
    }
    const int threads = static_cast<int>(threads_val);

    t.reset();
    stats::PipelineStats pipeline_stats;
    pipeline_stats.set_index_load(load_stats);
    const std::vector<QueryResult> results = engine.search_batch(
        queries, threads, stats_mode.empty() ? nullptr : &pipeline_stats);
    std::fprintf(stderr, "searched in %.2fs (%d thread(s))\n", t.seconds(),
                 threads);

    // Results carry ORIGINAL database ids; the view overloads of the report
    // writers resolve residues/names through the index's id maps, so both
    // the owned and the mapped form report identically.
    for (SeqId q = 0; q < queries.size(); ++q) {
      if (outfmt == "tabular") {
        write_tabular(std::cout, queries.name(q), queries.sequence(q), view,
                      results[q], blosum62());
      } else if (outfmt == "pairwise") {
        write_pairwise(std::cout, queries.name(q), queries.sequence(q), view,
                       results[q], blosum62());
      }  // outfmt == "none": suppress the report (e.g. for --stats=json)
    }

    if (!stats_mode.empty()) {
      const stats::PipelineSnapshot snap = pipeline_stats.snapshot();
      if (stats_mode == "json") {
        const std::string json = stats::to_json(snap);
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
      } else {
        stats::print_table(stderr, snap);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
