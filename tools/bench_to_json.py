#!/usr/bin/env python3
"""Run the perf_regress bench and emit a validated benchmark JSON document.

Thin runner around bench/perf_regress: invokes the binary with a --json
temp file, validates the "mublastp-bench-v1" document it wrote (schema tag,
one run per kernel, identical counters), annotates it with the invocation
parameters, and writes it to the requested path (default stdout). Exit code
is nonzero if the bench failed, the document is malformed, or a
--min-speedup / --min-hit-detect floor is not met — which is what makes it
usable as a CI perf-regression gate.

Usage:
  tools/bench_to_json.py --bench=build/bench/perf_regress \
      [--out=BENCH.json] [--min-speedup=1.0] [--min-hit-detect=1.0] \
      [--kernel-key=avx2] [-- extra perf_regress args...]
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to the built perf_regress binary")
    parser.add_argument("--out", default="-",
                        help="output JSON path ('-' = stdout)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the checked kernel's total-pipeline "
                             "speedup over scalar reaches this floor")
    parser.add_argument("--min-hit-detect", type=float, default=0.0,
                        help="fail unless the checked kernel's stage-1 "
                             "hit-detect speedup over scalar reaches this "
                             "floor")
    parser.add_argument("--kernel-key", default="",
                        help="kernel to apply --min-speedup to "
                             "(default: the bench's auto-dispatch kernel)")
    parser.add_argument("rest", nargs="*",
                        help="extra arguments forwarded to perf_regress")
    args = parser.parse_args()

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = Path(tmp.name)
    try:
        cmd = [args.bench, f"--json={tmp_path}"] + args.rest
        proc = subprocess.run(cmd, stdout=sys.stderr)
        if proc.returncode != 0:
            print(f"error: {' '.join(cmd)} exited {proc.returncode}",
                  file=sys.stderr)
            return proc.returncode
        doc = json.loads(tmp_path.read_text())
    finally:
        tmp_path.unlink(missing_ok=True)

    if doc.get("schema") != "mublastp-bench-v1":
        print("error: unexpected schema in bench output", file=sys.stderr)
        return 1
    if not doc.get("counters_identical", False):
        print("error: kernels disagreed on pipeline counters", file=sys.stderr)
        return 1
    kernels = [r["kernel"] for r in doc.get("runs", [])]
    if "scalar" not in kernels:
        print("error: no scalar baseline run in bench output", file=sys.stderr)
        return 1

    key = args.kernel_key or doc.get("auto_kernel", "")
    gated = args.min_speedup > 0.0 or args.min_hit_detect > 0.0
    if gated and key != "scalar":
        speedup = doc.get("speedup_vs_scalar", {}).get(key)
        if speedup is None:
            print(f"error: no speedup entry for kernel '{key}'",
                  file=sys.stderr)
            return 1
        if args.min_speedup > 0.0 and speedup["total"] < args.min_speedup:
            print(f"error: {key} total speedup {speedup['total']:.3f}x "
                  f"below floor {args.min_speedup:.3f}x", file=sys.stderr)
            return 1
        detect = speedup.get("hit_detect")
        if args.min_hit_detect > 0.0:
            if detect is None:
                print(f"error: no hit_detect speedup entry for kernel "
                      f"'{key}'", file=sys.stderr)
                return 1
            if detect < args.min_hit_detect:
                print(f"error: {key} hit_detect speedup {detect:.3f}x "
                      f"below floor {args.min_hit_detect:.3f}x",
                      file=sys.stderr)
                return 1
        print(f"{key} total speedup {speedup['total']:.3f}x "
              f"(hit_detect {detect if detect is not None else 0.0:.3f}x, "
              f"gapped {speedup['gapped']:.3f}x, "
              f"floors total {args.min_speedup:.3f}x / "
              f"hit_detect {args.min_hit_detect:.3f}x)", file=sys.stderr)

    doc["invocation"] = {"bench": args.bench, "args": args.rest}
    text = json.dumps(doc, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
