// mublastp_verify: the paper's Section V-E check as a command — run the
// query-indexed engine (NCBI), the interleaved database-indexed engine
// (NCBI-db) and muBLASTP (with and without pre-filtering, plus a run over a
// memory-mapped copy of the index) on the same workload and diff their
// outputs stage by stage. Four additional runs drive muBLASTP and NCBI-db
// through the SIMD kernel (--kernel, default the best the CPU supports)
// against the forced-scalar baselines — one with the banded gapped kernel
// only, one additionally opting into the batched vector ungapped kernel,
// and one with pre-filtering off (Algorithm 1 through the vector hit-scan
// collect path) — asserting the vector kernels are bit-identical down to
// every counter.
// A ninth run searches a 3-shard round-robin partitioning of the same
// database through the sharded orchestrator (docs/SHARDING.md): merged
// results must match every other engine, per-query stage stats must equal
// the single-index run exactly, and the per-shard hit counters must sum to
// the single-index total.
// An eleventh run proves the incremental-build contract
// (docs/INCREMENTAL.md): the database is split, the prefix saved as a base
// index, the remainder published as a delta generation with
// append_generation, and the base+delta chain searched through
// GenerationChain — merged results AND per-query stage stats must equal
// the from-scratch single-index run exactly, field for field.
//
// Usage:
//   mublastp_verify [--residues=N] [--queries=K] [--qlen=L] [--seed=S]
//                   [--stats[=json]] [--kernel=auto|scalar|sse42|avx2]
//   mublastp_verify --db=db.fasta --query=q.fasta
//
// Exit code 0 iff every stage of every engine pair matches exactly — both
// the result lists AND the pipeline counters (hits, two-hit pairs, ungapped
// alignments, gapped extensions must be identical across engines; ungapped
// extension counts additionally match across the database-indexed engines).
// The mmap run saves the index to a temporary file, reopens it zero-copy
// through MappedDbIndex and must be indistinguishable from the in-memory
// engine — the round-trip guarantee of index format v3. The SIMD runs must
// match their scalar twins on EVERY counter, execution-strategy ones
// included.
//
// --stats prints one telemetry table per engine to stderr; --stats=json
// emits one "mublastp-stats-v1" JSON snapshot per engine, one per line, to
// stdout.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "cluster/gen_chain.hpp"
#include "cluster/orchestrator.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index.hpp"
#include "index/db_index_io.hpp"
#include "index/generation.hpp"
#include "index/mapped_db_index.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

bool same_ungapped(const QueryResult& a, const QueryResult& b) {
  return a.ungapped == b.ungapped;
}

// Counter-level equivalence: every engine must detect the same hits, keep
// the same two-hit pairs, and produce the same HSPs and gapped extensions.
// (sorted_records and extensions are execution-strategy details — e.g. the
// pre-filter-off variant sorts raw hits — and are not compared across all.)
bool same_counters(const stats::StageCounters& a,
                   const stats::StageCounters& b) {
  return a.hits == b.hits && a.hit_pairs == b.hit_pairs &&
         a.ungapped_alignments == b.ungapped_alignments &&
         a.gapped_extensions == b.gapped_extensions;
}

bool same_final(const QueryResult& a, const QueryResult& b) {
  if (a.alignments.size() != b.alignments.size()) return false;
  for (std::size_t i = 0; i < a.alignments.size(); ++i) {
    const GappedAlignment& x = a.alignments[i];
    const GappedAlignment& y = b.alignments[i];
    if (x.subject != y.subject || x.score != y.score ||
        x.q_start != y.q_start || x.q_end != y.q_end ||
        x.s_start != y.s_start || x.s_end != y.s_end || x.ops != y.ops) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string stats_mode =
        arg_flag(argc, argv, "stats") ? "table"
                                      : arg_str(argc, argv, "stats", "");
    if (!stats_mode.empty() && stats_mode != "table" && stats_mode != "json") {
      std::fprintf(stderr, "error: unknown --stats mode '%s'"
                   " (expected --stats or --stats=json)\n",
                   stats_mode.c_str());
      return 2;
    }
    SequenceStore db;
    SequenceStore queries;
    const std::string db_path = arg_str(argc, argv, "db", "");
    const std::uint64_t seed = arg_num(argc, argv, "seed", 515);
    if (!db_path.empty()) {
      read_fasta_file(db_path, db);
      read_fasta_file(arg_str(argc, argv, "query", ""), queries);
    } else {
      const std::size_t residues = arg_num(argc, argv, "residues", 1 << 20);
      db = synth::generate_database(synth::sprot_like(residues), seed);
      Rng rng(seed + 1);
      queries = synth::sample_queries(db, arg_num(argc, argv, "queries", 4),
                                      arg_num(argc, argv, "qlen", 128), rng);
    }
    std::printf("database: %zu sequences (%zu residues); %zu queries\n",
                db.size(), db.total_residues(), queries.size());

    const simd::KernelPath kernel =
        simd::parse_kernel(arg_str(argc, argv, "kernel", "auto"));
    if (!simd::kernel_supported(kernel)) {
      std::fprintf(stderr, "error: kernel '%s' is not supported on this"
                   " CPU\n", simd::kernel_name(kernel));
      return 2;
    }
    std::printf("simd kernel under test: %s\n", simd::kernel_name(kernel));

    const DbIndex index = DbIndex::build(db, {});
    // The five baseline runs are forced scalar; the -simd runs execute the
    // kernel under test and must match them bit for bit.
    constexpr simd::KernelPath kScalarPath = simd::KernelPath::kScalar;
    const QueryIndexedEngine ncbi(db, {}, kDefaultNeighborThreshold,
                                  QueryIndexedEngine::Detector::kLookupTable,
                                  kScalarPath);
    const InterleavedDbEngine ncbi_db(index, {}, kScalarPath);
    MuBlastpOptions scalar_opts;
    scalar_opts.kernel = kScalarPath;
    const MuBlastpEngine mu(index, {}, scalar_opts);
    MuBlastpOptions nopf = scalar_opts;
    nopf.prefilter = false;
    const MuBlastpEngine mu_nopf(index, {}, nopf);
    MuBlastpOptions simd_opts;
    simd_opts.kernel = kernel;
    const MuBlastpEngine mu_simd(index, {}, simd_opts);
    const InterleavedDbEngine ncbi_db_simd(index, {}, kernel);
    // The opt-in batched vector ungapped kernel on top of the banded
    // gapped kernel ("--kernel=<path>+ungapped" in the tools).
    MuBlastpOptions simd_ug_opts = simd_opts;
    simd_ug_opts.vector_ungapped = true;
    const MuBlastpEngine mu_simd_ug(index, {}, simd_ug_opts);
    // Algorithm 1 through the dispatched kernel: with pre-filtering off the
    // hit-scan *collect* kernel feeds the sort; must twin mublastp-alg1.
    MuBlastpOptions nopf_simd = simd_opts;
    nopf_simd.prefilter = false;
    const MuBlastpEngine mu_alg1_simd(index, {}, nopf_simd);

    // The owned-vs-mapped equivalence check: round-trip the index through a
    // v3 file and drive the same engine off the read-only mapping.
    const std::filesystem::path tmp_index =
        std::filesystem::temp_directory_path() /
        ("mublastp_verify_" + std::to_string(::getpid()) + ".mbi");
    save_db_index_file(tmp_index.string(), index);
    const MappedDbIndex mapped(tmp_index.string());
    // The mapping keeps the pages alive after the unlink (POSIX), so the
    // temp file cannot leak even if a later check throws.
    std::filesystem::remove(tmp_index);
    const MuBlastpEngine mu_mmap(mapped, {}, scalar_opts);

    // The sharded run: same database split 3 ways round-robin, searched
    // through the orchestrator (in memory — no files), merged back. One
    // batch search up front; the per-query loop below diffs its slices.
    namespace cl = cluster;
    const cl::ShardSet shard_set = cl::ShardSet::build_in_memory(
        db, 3, cl::PartitionStrategy::kRoundRobinSorted, {},
        {{}, scalar_opts, false});
    const cl::ShardedSearchResult sharded = cl::search_sharded(
        shard_set, queries, 1, cl::ShardWorkerMode::kThread);

    // The incremental-build run: prefix of the database published as a base
    // index, the remainder appended as a delta generation through the real
    // on-disk protocol (durable publish, MUGEN01 manifest), the chain
    // loaded strictly and searched. Files are removed right after the load
    // — the chain owns in-memory copies.
    const std::size_t base_count =
        db.size() > 1 ? std::max<std::size_t>(1, db.size() * 2 / 3)
                      : db.size();
    SequenceStore db_base;
    SequenceStore db_delta;
    for (SeqId s = 0; s < db.size(); ++s) {
      (s < base_count ? db_base : db_delta).add(db.sequence(s), db.name(s));
    }
    const std::filesystem::path gen_base =
        std::filesystem::temp_directory_path() /
        ("mublastp_verify_gen_" + std::to_string(::getpid()) + ".mbi");
    save_db_index_file_durable(gen_base.string(), DbIndex::build(db_base, {}));
    std::vector<std::filesystem::path> gen_files = {gen_base};
    if (db_delta.size() != 0) {
      const AppendResult appended =
          append_generation(gen_base.string(), db_delta);
      gen_files.emplace_back(appended.delta_path);
      gen_files.emplace_back(appended.manifest_path);
    }
    const cl::GenerationChain chain = cl::GenerationChain::load(
        gen_base.string(), {{}, scalar_opts, /*strict=*/true}, nullptr);
    for (const std::filesystem::path& f : gen_files) {
      std::filesystem::remove(f);
    }
    const cl::ChainSearchResult chained = cl::search_chain(chain, queries, 1);

    struct Named {
      const char* name;
      QueryResult result;
      stats::PipelineSnapshot snap;
    };

    constexpr int kRuns = 11;
    stats::PipelineSnapshot agg[kRuns];
    bool all_ok = true;
    for (SeqId q = 0; q < queries.size(); ++q) {
      const auto query = queries.sequence(q);
      const auto run = [&](const char* name, const auto& engine) {
        stats::PipelineStats ps(name);
        QueryResult r = engine.search(query, ps);
        return Named{name, std::move(r), ps.snapshot()};
      };
      // The sharded run was computed as one batch above; wrap this query's
      // slice so the generic comparisons below treat it like any engine.
      const auto sharded_run = [&] {
        Named n;
        n.name = "mublastp-sharded";
        n.result = sharded.results[q];
        n.snap.engine = "mublastp-sharded";
        n.snap.queries = 1;
        n.snap.totals = stats::counters_of(n.result.stats);
        return n;
      };
      const auto chain_run = [&] {
        Named n;
        n.name = "mublastp-chain";
        n.result = chained.results[q];
        n.snap.engine = "mublastp-chain";
        n.snap.queries = 1;
        n.snap.totals = stats::counters_of(n.result.stats);
        return n;
      };
      const Named runs[kRuns] = {
          run("ncbi", ncbi),
          run("ncbi-db", ncbi_db),
          run("mublastp", mu),
          run("mublastp-alg1", mu_nopf),
          run("mublastp-mmap", mu_mmap),
          run("mublastp-simd", mu_simd),
          run("ncbi-db-simd", ncbi_db_simd),
          run("mublastp-simd+ungapped", mu_simd_ug),
          sharded_run(),
          run("mublastp-alg1-simd", mu_alg1_simd),
          chain_run(),
      };
      bool ok = true;
      for (std::size_t i = 1; i < kRuns; ++i) {
        if (!same_ungapped(runs[0].result, runs[i].result)) {
          std::printf("query %u: STAGE-2 MISMATCH %s vs %s\n", q,
                      runs[0].name, runs[i].name);
          ok = false;
        }
        if (!same_final(runs[0].result, runs[i].result)) {
          std::printf("query %u: FINAL MISMATCH %s vs %s\n", q, runs[0].name,
                      runs[i].name);
          ok = false;
        }
        if (!same_counters(runs[0].snap.totals, runs[i].snap.totals)) {
          std::printf("query %u: COUNTER MISMATCH %s vs %s"
                      " (hits %llu vs %llu, pairs %llu vs %llu,"
                      " HSPs %llu vs %llu, gapped %llu vs %llu)\n",
                      q, runs[0].name, runs[i].name,
                      static_cast<unsigned long long>(runs[0].snap.totals.hits),
                      static_cast<unsigned long long>(runs[i].snap.totals.hits),
                      static_cast<unsigned long long>(
                          runs[0].snap.totals.hit_pairs),
                      static_cast<unsigned long long>(
                          runs[i].snap.totals.hit_pairs),
                      static_cast<unsigned long long>(
                          runs[0].snap.totals.ungapped_alignments),
                      static_cast<unsigned long long>(
                          runs[i].snap.totals.ungapped_alignments),
                      static_cast<unsigned long long>(
                          runs[0].snap.totals.gapped_extensions),
                      static_cast<unsigned long long>(
                          runs[i].snap.totals.gapped_extensions));
          ok = false;
        }
      }
      // Both database-indexed engines execute the same two-hit pairs, so
      // their ungapped-extension counts must agree exactly as well.
      if (runs[1].snap.totals.extensions != runs[2].snap.totals.extensions) {
        std::printf("query %u: EXTENSION-COUNT MISMATCH %s vs %s"
                    " (%llu vs %llu)\n", q, runs[1].name, runs[2].name,
                    static_cast<unsigned long long>(
                        runs[1].snap.totals.extensions),
                    static_cast<unsigned long long>(
                        runs[2].snap.totals.extensions));
        ok = false;
      }
      // Owned and mapped runs are the SAME engine on the same data; every
      // counter — including execution-strategy ones — must be identical.
      if (runs[2].snap.totals != runs[4].snap.totals) {
        std::printf("query %u: OWNED/MAPPED COUNTER MISMATCH %s vs %s\n", q,
                    runs[2].name, runs[4].name);
        ok = false;
      }
      // A SIMD run differs from its scalar twin only in which kernel
      // executes the same extensions — EVERY counter must be identical.
      if (runs[2].snap.totals != runs[5].snap.totals) {
        std::printf("query %u: SCALAR/SIMD COUNTER MISMATCH %s vs %s\n", q,
                    runs[2].name, runs[5].name);
        ok = false;
      }
      if (runs[1].snap.totals != runs[6].snap.totals) {
        std::printf("query %u: SCALAR/SIMD COUNTER MISMATCH %s vs %s\n", q,
                    runs[1].name, runs[6].name);
        ok = false;
      }
      if (runs[2].snap.totals != runs[7].snap.totals) {
        std::printf("query %u: SCALAR/SIMD COUNTER MISMATCH %s vs %s\n", q,
                    runs[2].name, runs[7].name);
        ok = false;
      }
      if (runs[3].snap.totals != runs[9].snap.totals) {
        std::printf("query %u: SCALAR/SIMD COUNTER MISMATCH %s vs %s\n", q,
                    runs[3].name, runs[9].name);
        ok = false;
      }
      // Every gapped extension is one left half + one right half, and each
      // half is settled by exactly one tier of the banded kernel — so on a
      // dispatched run the tier tallies must sum to 2x gapped_extensions
      // (and stay zero on forced-scalar runs, checked via .any()).
      for (const int i : {5, 6, 7, 9}) {
        const stats::GappedKernelStats& gk = runs[i].snap.gapped_kernel;
        const std::uint64_t halves =
            gk.int8_runs + gk.int16_reruns + gk.scalar_fallbacks;
        const std::uint64_t expect =
            kernel == kScalarPath
                ? 0
                : 2 * runs[i].snap.totals.gapped_extensions;
        if (halves != expect) {
          std::printf("query %u: GAPPED-TIER TALLY MISMATCH %s"
                      " (%llu halves, expected %llu)\n",
                      q, runs[i].name,
                      static_cast<unsigned long long>(halves),
                      static_cast<unsigned long long>(expect));
          ok = false;
        }
      }
      if (runs[2].snap.gapped_kernel.any()) {
        std::printf("query %u: scalar run booked gapped-kernel tiers\n", q);
        ok = false;
      }
      // The sharded merge sums per-shard stage stats over disjoint subject
      // sets — the result must equal the single-index run's stats EXACTLY,
      // field for field, not just on the deterministic counter subset.
      if (runs[8].result.stats != runs[2].result.stats) {
        std::printf("query %u: SHARDED STAGE-STATS MISMATCH %s vs %s\n", q,
                    runs[8].name, runs[2].name);
        ok = false;
      }
      // Same contract for the base+delta chain: the merge sums per-member
      // stage stats over disjoint subject sets — every field must equal the
      // from-scratch single-index run, not just the deterministic subset.
      if (runs[10].result.stats != runs[2].result.stats) {
        std::printf("query %u: CHAIN STAGE-STATS MISMATCH %s vs %s\n", q,
                    runs[10].name, runs[2].name);
        ok = false;
      }
      for (int i = 0; i < kRuns; ++i) agg[i].merge(runs[i].snap);
      std::printf("query %-3u %-40s %s (%zu ungapped, %zu alignments)\n", q,
                  queries.name(q).c_str(), ok ? "OK" : "MISMATCH",
                  runs[0].result.ungapped.size(),
                  runs[0].result.alignments.size());
      all_ok = all_ok && ok;
    }
    // Counter-sum tally: the per-shard hit counters the orchestrator books
    // (telemetry, not merged results) must sum to the single-index engine's
    // aggregate — no hit double-counted, none dropped, across the batch.
    std::uint64_t shard_hits = 0;
    for (const auto& s : sharded.shards.per_shard) shard_hits += s.hits;
    if (shard_hits != agg[2].totals.hits) {
      std::printf("SHARD TALLY MISMATCH: per-shard hits sum %llu !="
                  " single-index total %llu\n",
                  static_cast<unsigned long long>(shard_hits),
                  static_cast<unsigned long long>(agg[2].totals.hits));
      all_ok = false;
    } else {
      std::printf("shard tally: %u shards (%s), per-shard hits sum %llu =="
                  " single-index total\n",
                  sharded.shards.count, sharded.shards.strategy.c_str(),
                  static_cast<unsigned long long>(shard_hits));
    }
    std::printf("generation chain: %u member(s) at generation %u searched"
                " through the on-disk base+delta protocol\n",
                chain.member_count(), chain.generation());
    if (!stats_mode.empty()) {
      for (int i = 0; i < kRuns; ++i) {
        if (stats_mode == "json") {
          // One snapshot per line (JSONL): collapse the pretty-printed form
          // by dropping newlines and their indentation (no string in the
          // schema contains either).
          const std::string json = stats::to_json(agg[i]);
          std::string line;
          line.reserve(json.size());
          for (std::size_t p = 0; p < json.size(); ++p) {
            if (json[p] == '\n') {
              while (p + 1 < json.size() && json[p + 1] == ' ') ++p;
              continue;
            }
            line.push_back(json[p]);
          }
          std::fwrite(line.data(), 1, line.size(), stdout);
          std::fputc('\n', stdout);
        } else {
          stats::print_table(stderr, agg[i]);
        }
      }
    }
    std::printf("%s\n", all_ok
                            ? "verification PASSED: all engines identical at "
                              "every stage"
                            : "verification FAILED");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
