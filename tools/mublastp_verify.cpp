// mublastp_verify: the paper's Section V-E check as a command — run the
// query-indexed engine (NCBI), the interleaved database-indexed engine
// (NCBI-db) and muBLASTP (with and without pre-filtering) on the same
// workload and diff their outputs stage by stage.
//
// Usage:
//   mublastp_verify [--residues=N] [--queries=K] [--qlen=L] [--seed=S]
//   mublastp_verify --db=db.fasta --query=q.fasta
//
// Exit code 0 iff every stage of every engine pair matches exactly.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

bool same_ungapped(const QueryResult& a, const QueryResult& b) {
  return a.ungapped == b.ungapped;
}

bool same_final(const QueryResult& a, const QueryResult& b) {
  if (a.alignments.size() != b.alignments.size()) return false;
  for (std::size_t i = 0; i < a.alignments.size(); ++i) {
    const GappedAlignment& x = a.alignments[i];
    const GappedAlignment& y = b.alignments[i];
    if (x.subject != y.subject || x.score != y.score ||
        x.q_start != y.q_start || x.q_end != y.q_end ||
        x.s_start != y.s_start || x.s_end != y.s_end || x.ops != y.ops) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    SequenceStore db;
    SequenceStore queries;
    const std::string db_path = arg_str(argc, argv, "db", "");
    const std::uint64_t seed = arg_num(argc, argv, "seed", 515);
    if (!db_path.empty()) {
      read_fasta_file(db_path, db);
      read_fasta_file(arg_str(argc, argv, "query", ""), queries);
    } else {
      const std::size_t residues = arg_num(argc, argv, "residues", 1 << 20);
      db = synth::generate_database(synth::sprot_like(residues), seed);
      Rng rng(seed + 1);
      queries = synth::sample_queries(db, arg_num(argc, argv, "queries", 4),
                                      arg_num(argc, argv, "qlen", 128), rng);
    }
    std::printf("database: %zu sequences (%zu residues); %zu queries\n",
                db.size(), db.total_residues(), queries.size());

    const DbIndex index = DbIndex::build(db, {});
    const QueryIndexedEngine ncbi(db);
    const InterleavedDbEngine ncbi_db(index);
    const MuBlastpEngine mu(index);
    MuBlastpOptions nopf;
    nopf.prefilter = false;
    const MuBlastpEngine mu_nopf(index, {}, nopf);

    struct Named {
      const char* name;
      QueryResult result;
    };

    bool all_ok = true;
    for (SeqId q = 0; q < queries.size(); ++q) {
      const auto query = queries.sequence(q);
      const Named runs[] = {
          {"NCBI", ncbi.search(query)},
          {"NCBI-db", ncbi_db.search(query)},
          {"muBLASTP", mu.search(query)},
          {"muBLASTP/Alg1", mu_nopf.search(query)},
      };
      bool ok = true;
      for (std::size_t i = 1; i < 4; ++i) {
        if (!same_ungapped(runs[0].result, runs[i].result)) {
          std::printf("query %u: STAGE-2 MISMATCH %s vs %s\n", q,
                      runs[0].name, runs[i].name);
          ok = false;
        }
        if (!same_final(runs[0].result, runs[i].result)) {
          std::printf("query %u: FINAL MISMATCH %s vs %s\n", q, runs[0].name,
                      runs[i].name);
          ok = false;
        }
      }
      std::printf("query %-3u %-40s %s (%zu ungapped, %zu alignments)\n", q,
                  queries.name(q).c_str(), ok ? "OK" : "MISMATCH",
                  runs[0].result.ungapped.size(),
                  runs[0].result.alignments.size());
      all_ok = all_ok && ok;
    }
    std::printf("%s\n", all_ok
                            ? "verification PASSED: all engines identical at "
                              "every stage"
                            : "verification FAILED");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
