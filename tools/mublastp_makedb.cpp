// mublastp_makedb: build a database index from FASTA (or a synthetic
// preset) and save it for reuse — the "formatdb"/"makeblastdb" step of the
// database-indexed workflow.
//
// Usage:
//   mublastp_makedb --in=db.fasta --out=db.mbi [--block-kb=512]
//                   [--threshold=11] [--long-limit=8192]
//                   [--build-threads=N] [--stats[=json]]
//   mublastp_makedb --synth=sprot|envnr --residues=N --seed=S --out=db.mbi
//   mublastp_makedb --append=new.fasta --out=db.mbi
//   mublastp_makedb --compact --out=db.mbi
//
// Every index and manifest this tool writes is published crash-safely
// (common/durable.hpp): bytes go to `<final>.tmp`, are fsynced, atomically
// rename(2)d onto the final name, and the directory is fsynced — a kill -9
// at any instant leaves either the old state or the new one, never a torn
// file. Orphaned `*.tmp` files from a crashed run are removed by the next
// incremental operation.
//
// Incremental builds (--append, exclusive with --in/--synth/--shards):
// reads the chain's build configuration from the newest MUGEN01 generation
// manifest next to --out (or from the base index's config section when no
// manifest exists yet), builds a self-contained delta index over the new
// sequences with identical parameters, writes it as <out>.dNNNNNN, and
// publishes generation manifest <out>.genNNNNNN as the single commit
// point. mublastp_search --index=<out> transparently searches the whole
// chain with output bit-identical to a from-scratch rebuild (see
// docs/INCREMENTAL.md).
//
// --compact folds the whole chain back into one canonical length-sorted
// member (<out>.cNNNNNN), publishes it as a new single-member generation,
// and only then garbage-collects the stale members and manifests.
//
// --build-threads=N bounds the OpenMP per-block build parallelism (0 = all
// cores, the default). --stats prints a build-telemetry table to stderr;
// --stats=json emits the machine-readable "mublastp-stats-v1" snapshot
// (with the "build" object: per-block seconds, parallelism, generation
// chain length) to stdout — the informational progress lines move to
// stderr then, so stdout is pure JSON.
//
// With --shards=N the database is partitioned (--strategy=rr|lpt|contig,
// default rr — the paper's length-sort + round-robin deal) into N
// self-contained shard indexes written as <out>.shard0..<out>.shardN-1,
// and <out> becomes a MUSHARD01 manifest tying them together (see
// docs/SHARDING.md). mublastp_search --shards-manifest=<out> searches them
// as one database.
//
// --inject=site:Nth[:errno] arms a fault-injection site (see
// docs/ROBUSTNESS.md); exit codes map the typed error taxonomy:
// 0 ok, 1 generic, 2 usage, 4 I/O, 5 corrupt input, 6 resources.
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/partition.hpp"
#include "cluster/shard_manifest.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index.hpp"
#include "index/db_index_io.hpp"
#include "index/generation.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::uint32_t file_crc32(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), mublastp::ErrorKind::kIo,
                      "cannot reopen shard index for checksum: " + path);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return mublastp::crc32(bytes.data(), bytes.size());
}

/// Informational output: stdout normally, stderr when --stats=json owns
/// stdout (so the JSON snapshot is the only thing on it).
std::FILE* g_info = stdout;

void info(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(g_info, fmt, ap);
  va_end(ap);
}

// Builds + writes the N shard indexes and the MUSHARD01 manifest.
void make_sharded(const mublastp::SequenceStore& db,
                  const mublastp::DbIndexConfig& config,
                  const std::string& out_path, int shards,
                  mublastp::cluster::PartitionStrategy strategy) {
  using namespace mublastp;
  namespace cl = mublastp::cluster;

  std::vector<std::size_t> seq_lens(db.size());
  for (SeqId i = 0; i < db.size(); ++i) seq_lens[i] = db.length(i);
  const cl::Partitioning parts =
      cl::make_partitioning(seq_lens, shards, strategy);

  cl::ShardManifest manifest;
  manifest.strategy = strategy;
  manifest.total_sequences = db.size();
  manifest.total_residues = db.total_residues();
  manifest.shards.resize(static_cast<std::size_t>(shards));
  // Ascending global-id walk keeps every shard's remap strictly increasing
  // (the manifest invariant the merge relies on).
  for (SeqId i = 0; i < db.size(); ++i) {
    manifest.shards[parts.assignment[i]].to_global.push_back(i);
  }

  Timer t;
  for (int k = 0; k < shards; ++k) {
    cl::ShardManifest::Shard& shard =
        manifest.shards[static_cast<std::size_t>(k)];
    shard.num_sequences = shard.to_global.size();
    if (shard.to_global.empty()) continue;  // empty shard: no index file
    SequenceStore shard_db;
    for (const SeqId g : shard.to_global) {
      shard_db.add(db.sequence(g), db.name(g));
      shard.num_residues += db.length(g);
    }
    const DbIndex index = DbIndex::build(shard_db, config);
    const std::string shard_path = out_path + ".shard" + std::to_string(k);
    // Shard members publish durably too: the manifest (written last, also
    // durably) must never name a shard file that could be torn by a crash.
    save_db_index_file_durable(shard_path, index);
    shard.path = basename_of(shard_path);
    shard.index_crc32 = file_crc32(shard_path);
    info("shard %d: %zu sequences, %llu residues, %zu blocks -> %s\n",
         k, shard.to_global.size(),
         static_cast<unsigned long long>(shard.num_residues),
         index.blocks().size(), shard_path.c_str());
  }
  cl::save_shard_manifest(out_path, manifest);
  info("wrote manifest %s: %d shards (%s), imbalance %.3f, in %.2fs\n",
       out_path.c_str(), shards, cl::strategy_name(strategy),
       manifest.predicted_imbalance(), t.seconds());
}

/// Emits the --stats output (table to stderr, or stats-v1 JSON to stdout).
void emit_stats(const std::string& stats_mode,
                const mublastp::stats::BuildStats& build) {
  namespace stats = mublastp::stats;
  stats::PipelineSnapshot snap;
  snap.engine = "mublastp-makedb";
  snap.threads = build.threads;
  snap.build = build;
  if (stats_mode == "json") {
    const std::string json = stats::to_json(snap);
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    stats::print_table(stderr, snap);
  }
}

mublastp::stats::BuildStats build_stats_of(
    const mublastp::BuildTelemetry& telemetry, std::uint32_t generation,
    std::uint32_t chain_length, std::uint64_t sequences,
    std::uint64_t residues) {
  mublastp::stats::BuildStats b;
  b.generation = generation;
  b.chain_length = chain_length;
  b.sequences = sequences;
  b.residues = residues;
  b.threads = telemetry.threads;
  b.plan_seconds = telemetry.plan_seconds;
  b.total_seconds = telemetry.total_seconds;
  b.block_seconds = telemetry.block_seconds;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string in_path = arg_str(argc, argv, "in", "");
  const std::string synth_preset = arg_str(argc, argv, "synth", "");
  const std::string out_path = arg_str(argc, argv, "out", "");
  const std::string append_path = arg_str(argc, argv, "append", "");
  const bool compact = arg_flag(argc, argv, "compact");
  const std::string stats_mode =
      arg_flag(argc, argv, "stats") ? "table"
                                    : arg_str(argc, argv, "stats", "");
  const bool have_input = !in_path.empty() || !synth_preset.empty();
  // Exactly one of: plain build (--in/--synth), --append, --compact.
  const int modes = (have_input ? 1 : 0) + (append_path.empty() ? 0 : 1) +
                    (compact ? 1 : 0);
  if (out_path.empty() || modes != 1) {
    std::fprintf(stderr,
                 "usage: mublastp_makedb (--in=db.fasta | --synth=sprot|envnr"
                 " --residues=N | --append=new.fasta | --compact)"
                 " --out=db.mbi [--block-kb=512]"
                 " [--threshold=11] [--long-limit=8192] [--seed=42]"
                 " [--build-threads=N] [--stats[=json]]"
                 " [--shards=N [--strategy=rr|lpt|contig]]"
                 " [--inject=site:Nth]\n"
                 "       (--append/--compact are exclusive with --in/--synth"
                 " and --shards)\n");
    return 2;
  }
  if (!stats_mode.empty() && stats_mode != "table" && stats_mode != "json") {
    std::fprintf(stderr, "error: unknown --stats mode '%s'"
                 " (expected --stats or --stats=json)\n", stats_mode.c_str());
    return 2;
  }
  if (stats_mode == "json") g_info = stderr;
  const std::size_t shards = arg_num(argc, argv, "shards", 0);
  if (shards > 0 && (!append_path.empty() || compact)) {
    std::fprintf(stderr,
                 "error: --shards is exclusive with --append/--compact\n");
    return 2;
  }
  const std::string strategy_spec = arg_str(argc, argv, "strategy", "rr");
  const int build_threads =
      static_cast<int>(arg_num(argc, argv, "build-threads", 0));
  const std::string inject = arg_str(argc, argv, "inject", "");
  if (!inject.empty()) {
    try {
      fi::arm_from_spec(inject);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: bad --inject spec '%s': %s\n",
                   inject.c_str(), e.what());
      return 2;
    }
  }

  try {
    if (compact) {
      Timer t;
      const CompactResult res = compact_generations(out_path, build_threads);
      info("compacted chain -> %s (generation %u) in %.2fs\n",
           res.compact_path.c_str(), res.generation, t.seconds());
      for (const std::string& gone : res.removed) {
        info("removed stale %s\n", gone.c_str());
      }
      if (!stats_mode.empty()) {
        // The compacted member holds the whole database; its totals come
        // from the freshly published manifest.
        const ResolvedGeneration now = resolve_generations(out_path);
        emit_stats(stats_mode,
                   build_stats_of(res.telemetry, res.generation, 1,
                                  now.manifest ? now.manifest->total_sequences
                                               : 0,
                                  now.manifest ? now.manifest->total_residues
                                               : 0));
      }
      return 0;
    }

    SequenceStore db;
    const std::string read_path =
        append_path.empty() ? in_path : append_path;
    if (!read_path.empty()) {
      Timer t;
      const std::size_t n = read_fasta_file(read_path, db);
      info("read %zu sequences (%zu residues) from %s in %.2fs\n", n,
           db.total_residues(), read_path.c_str(), t.seconds());
    } else {
      const std::size_t residues = arg_num(argc, argv, "residues", 1 << 22);
      const std::uint64_t seed = arg_num(argc, argv, "seed", 42);
      const synth::DatabaseSpec spec = synth_preset == "envnr"
                                           ? synth::envnr_like(residues)
                                           : synth::sprot_like(residues);
      db = synth::generate_database(spec, seed);
      info("generated %s: %zu sequences, %zu residues (seed %llu)\n",
           spec.name.c_str(), db.size(), db.total_residues(),
           static_cast<unsigned long long>(seed));
    }

    if (!append_path.empty()) {
      Timer t;
      const AppendResult res =
          append_generation(out_path, db, build_threads);
      if (res.orphans_removed != 0) {
        info("removed %zu orphaned temp file(s)\n", res.orphans_removed);
      }
      info("appended %zu sequences -> %s, published generation %u"
           " (%u member chain) in %.2fs\n",
           db.size(), res.delta_path.c_str(), res.generation,
           res.chain_length, t.seconds());
      if (!stats_mode.empty()) {
        emit_stats(stats_mode,
                   build_stats_of(res.telemetry, res.generation,
                                  res.chain_length, db.size(),
                                  db.total_residues()));
      }
      return 0;
    }

    DbIndexConfig config;
    config.block_bytes = arg_num(argc, argv, "block-kb", 512) * 1024;
    config.neighbor_threshold =
        static_cast<Score>(arg_num(argc, argv, "threshold", 11));
    config.long_seq_limit = arg_num(argc, argv, "long-limit", 8192);
    config.build_threads = build_threads;

    if (shards > 0) {
      make_sharded(db, config, out_path, static_cast<int>(shards),
                   cluster::parse_strategy(strategy_spec));
      return 0;
    }

    Timer t;
    BuildTelemetry telemetry;
    const DbIndex index = DbIndex::build(db, config, &telemetry);
    info("built %zu blocks (T=%d, block %zu KB, %d thread(s)) in %.2fs\n",
         index.blocks().size(), config.neighbor_threshold,
         config.block_bytes / 1024, telemetry.threads, t.seconds());

    t.reset();
    // Durable publish (temp -> fsync -> rename -> dir fsync): exit 0 means
    // the index survives a crash or power loss the instant we return.
    save_db_index_file_durable(out_path, index);
    info("wrote %s in %.2fs\n", out_path.c_str(), t.seconds());
    if (!stats_mode.empty()) {
      emit_stats(stats_mode,
                 build_stats_of(telemetry, 0, 1, db.size(),
                                db.total_residues()));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
