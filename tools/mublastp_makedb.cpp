// mublastp_makedb: build a database index from FASTA (or a synthetic
// preset) and save it for reuse — the "formatdb"/"makeblastdb" step of the
// database-indexed workflow.
//
// Usage:
//   mublastp_makedb --in=db.fasta --out=db.mbi [--block-kb=512]
//                   [--threshold=11] [--long-limit=8192]
//   mublastp_makedb --synth=sprot|envnr --residues=N --seed=S --out=db.mbi
//
// With --shards=N the database is partitioned (--strategy=rr|lpt|contig,
// default rr — the paper's length-sort + round-robin deal) into N
// self-contained shard indexes written as <out>.shard0..<out>.shardN-1,
// and <out> becomes a MUSHARD01 manifest tying them together (see
// docs/SHARDING.md). mublastp_search --shards-manifest=<out> searches them
// as one database.
//
// --inject=site:Nth[:errno] arms a fault-injection site (see
// docs/ROBUSTNESS.md); exit codes map the typed error taxonomy:
// 0 ok, 1 generic, 2 usage, 4 I/O, 5 corrupt input, 6 resources.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/partition.hpp"
#include "cluster/shard_manifest.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index.hpp"
#include "index/db_index_io.hpp"
#include "synth/synth.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::uint32_t file_crc32(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), mublastp::ErrorKind::kIo,
                      "cannot reopen shard index for checksum: " + path);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return mublastp::crc32(bytes.data(), bytes.size());
}

// Builds + writes the N shard indexes and the MUSHARD01 manifest.
void make_sharded(const mublastp::SequenceStore& db,
                  const mublastp::DbIndexConfig& config,
                  const std::string& out_path, int shards,
                  mublastp::cluster::PartitionStrategy strategy) {
  using namespace mublastp;
  namespace cl = mublastp::cluster;

  std::vector<std::size_t> seq_lens(db.size());
  for (SeqId i = 0; i < db.size(); ++i) seq_lens[i] = db.length(i);
  const cl::Partitioning parts =
      cl::make_partitioning(seq_lens, shards, strategy);

  cl::ShardManifest manifest;
  manifest.strategy = strategy;
  manifest.total_sequences = db.size();
  manifest.total_residues = db.total_residues();
  manifest.shards.resize(static_cast<std::size_t>(shards));
  // Ascending global-id walk keeps every shard's remap strictly increasing
  // (the manifest invariant the merge relies on).
  for (SeqId i = 0; i < db.size(); ++i) {
    manifest.shards[parts.assignment[i]].to_global.push_back(i);
  }

  Timer t;
  for (int k = 0; k < shards; ++k) {
    cl::ShardManifest::Shard& shard =
        manifest.shards[static_cast<std::size_t>(k)];
    shard.num_sequences = shard.to_global.size();
    if (shard.to_global.empty()) continue;  // empty shard: no index file
    SequenceStore shard_db;
    for (const SeqId g : shard.to_global) {
      shard_db.add(db.sequence(g), db.name(g));
      shard.num_residues += db.length(g);
    }
    const DbIndex index = DbIndex::build(shard_db, config);
    const std::string shard_path = out_path + ".shard" + std::to_string(k);
    save_db_index_file(shard_path, index);
    shard.path = basename_of(shard_path);
    shard.index_crc32 = file_crc32(shard_path);
    std::printf("shard %d: %zu sequences, %llu residues, %zu blocks -> %s\n",
                k, shard.to_global.size(),
                static_cast<unsigned long long>(shard.num_residues),
                index.blocks().size(), shard_path.c_str());
  }
  cl::save_shard_manifest(out_path, manifest);
  std::printf(
      "wrote manifest %s: %d shards (%s), imbalance %.3f, in %.2fs\n",
      out_path.c_str(), shards, cl::strategy_name(strategy),
      manifest.predicted_imbalance(), t.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string in_path = arg_str(argc, argv, "in", "");
  const std::string synth_preset = arg_str(argc, argv, "synth", "");
  const std::string out_path = arg_str(argc, argv, "out", "");
  if (out_path.empty() || (in_path.empty() && synth_preset.empty())) {
    std::fprintf(stderr,
                 "usage: mublastp_makedb (--in=db.fasta | --synth=sprot|envnr"
                 " --residues=N) --out=db.mbi [--block-kb=512]"
                 " [--threshold=11] [--long-limit=8192] [--seed=42]"
                 " [--shards=N [--strategy=rr|lpt|contig]]"
                 " [--inject=site:Nth]\n");
    return 2;
  }
  const std::size_t shards = arg_num(argc, argv, "shards", 0);
  const std::string strategy_spec = arg_str(argc, argv, "strategy", "rr");
  const std::string inject = arg_str(argc, argv, "inject", "");
  if (!inject.empty()) {
    try {
      fi::arm_from_spec(inject);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: bad --inject spec '%s': %s\n",
                   inject.c_str(), e.what());
      return 2;
    }
  }

  try {
    SequenceStore db;
    if (!in_path.empty()) {
      Timer t;
      const std::size_t n = read_fasta_file(in_path, db);
      std::printf("read %zu sequences (%zu residues) from %s in %.2fs\n", n,
                  db.total_residues(), in_path.c_str(), t.seconds());
    } else {
      const std::size_t residues = arg_num(argc, argv, "residues", 1 << 22);
      const std::uint64_t seed = arg_num(argc, argv, "seed", 42);
      const synth::DatabaseSpec spec = synth_preset == "envnr"
                                           ? synth::envnr_like(residues)
                                           : synth::sprot_like(residues);
      db = synth::generate_database(spec, seed);
      std::printf("generated %s: %zu sequences, %zu residues (seed %llu)\n",
                  spec.name.c_str(), db.size(), db.total_residues(),
                  static_cast<unsigned long long>(seed));
    }

    DbIndexConfig config;
    config.block_bytes = arg_num(argc, argv, "block-kb", 512) * 1024;
    config.neighbor_threshold =
        static_cast<Score>(arg_num(argc, argv, "threshold", 11));
    config.long_seq_limit = arg_num(argc, argv, "long-limit", 8192);

    if (shards > 0) {
      make_sharded(db, config, out_path, static_cast<int>(shards),
                   cluster::parse_strategy(strategy_spec));
      return 0;
    }

    Timer t;
    const DbIndex index = DbIndex::build(db, config);
    std::printf("built %zu blocks (T=%d, block %zu KB) in %.2fs\n",
                index.blocks().size(), config.neighbor_threshold,
                config.block_bytes / 1024, t.seconds());

    t.reset();
    save_db_index_file(out_path, index);
    std::printf("wrote %s in %.2fs\n", out_path.c_str(), t.seconds());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
