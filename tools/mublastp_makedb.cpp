// mublastp_makedb: build a database index from FASTA (or a synthetic
// preset) and save it for reuse — the "formatdb"/"makeblastdb" step of the
// database-indexed workflow.
//
// Usage:
//   mublastp_makedb --in=db.fasta --out=db.mbi [--block-kb=512]
//                   [--threshold=11] [--long-limit=8192]
//   mublastp_makedb --synth=sprot|envnr --residues=N --seed=S --out=db.mbi
//
// --inject=site:Nth[:errno] arms a fault-injection site (see
// docs/ROBUSTNESS.md); exit codes map the typed error taxonomy:
// 0 ok, 1 generic, 2 usage, 4 I/O, 5 corrupt input, 6 resources.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "fasta/fasta.hpp"
#include "index/db_index.hpp"
#include "index/db_index_io.hpp"
#include "synth/synth.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string in_path = arg_str(argc, argv, "in", "");
  const std::string synth_preset = arg_str(argc, argv, "synth", "");
  const std::string out_path = arg_str(argc, argv, "out", "");
  if (out_path.empty() || (in_path.empty() && synth_preset.empty())) {
    std::fprintf(stderr,
                 "usage: mublastp_makedb (--in=db.fasta | --synth=sprot|envnr"
                 " --residues=N) --out=db.mbi [--block-kb=512]"
                 " [--threshold=11] [--long-limit=8192] [--seed=42]"
                 " [--inject=site:Nth]\n");
    return 2;
  }
  const std::string inject = arg_str(argc, argv, "inject", "");
  if (!inject.empty()) {
    try {
      fi::arm_from_spec(inject);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: bad --inject spec '%s': %s\n",
                   inject.c_str(), e.what());
      return 2;
    }
  }

  try {
    SequenceStore db;
    if (!in_path.empty()) {
      Timer t;
      const std::size_t n = read_fasta_file(in_path, db);
      std::printf("read %zu sequences (%zu residues) from %s in %.2fs\n", n,
                  db.total_residues(), in_path.c_str(), t.seconds());
    } else {
      const std::size_t residues = arg_num(argc, argv, "residues", 1 << 22);
      const std::uint64_t seed = arg_num(argc, argv, "seed", 42);
      const synth::DatabaseSpec spec = synth_preset == "envnr"
                                           ? synth::envnr_like(residues)
                                           : synth::sprot_like(residues);
      db = synth::generate_database(spec, seed);
      std::printf("generated %s: %zu sequences, %zu residues (seed %llu)\n",
                  spec.name.c_str(), db.size(), db.total_residues(),
                  static_cast<unsigned long long>(seed));
    }

    DbIndexConfig config;
    config.block_bytes = arg_num(argc, argv, "block-kb", 512) * 1024;
    config.neighbor_threshold =
        static_cast<Score>(arg_num(argc, argv, "threshold", 11));
    config.long_seq_limit = arg_num(argc, argv, "long-limit", 8192);

    Timer t;
    const DbIndex index = DbIndex::build(db, config);
    std::printf("built %zu blocks (T=%d, block %zu KB) in %.2fs\n",
                index.blocks().size(), config.neighbor_threshold,
                config.block_bytes / 1024, t.seconds());

    t.reset();
    save_db_index_file(out_path, index);
    std::printf("wrote %s in %.2fs\n", out_path.c_str(), t.seconds());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
