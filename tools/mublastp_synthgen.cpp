// mublastp_synthgen: emit a synthetic protein database (and optionally a
// query set sampled from it) as FASTA — the data-generation substitution
// for the paper's uniprot_sprot / env_nr workloads (see DESIGN.md).
//
// Usage:
//   mublastp_synthgen --preset=sprot|envnr --residues=N --seed=S
//                     --out=db.fasta [--queries=K --qlen=L --qout=q.fasta]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "fasta/fasta.hpp"
#include "synth/synth.hpp"

namespace {

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::string out_path = arg_str(argc, argv, "out", "");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: mublastp_synthgen --preset=sprot|envnr"
                 " [--residues=N] [--seed=S] --out=db.fasta"
                 " [--queries=K --qlen=L --qout=q.fasta]\n");
    return 2;
  }

  try {
    const std::string preset = arg_str(argc, argv, "preset", "sprot");
    const std::size_t residues = arg_num(argc, argv, "residues", 1 << 22);
    const std::uint64_t seed = arg_num(argc, argv, "seed", 42);
    const synth::DatabaseSpec spec = preset == "envnr"
                                         ? synth::envnr_like(residues)
                                         : synth::sprot_like(residues);
    const SequenceStore db = synth::generate_database(spec, seed);
    write_fasta_file(out_path, db);
    std::printf("%s: %zu sequences, %zu residues -> %s\n", spec.name.c_str(),
                db.size(), db.total_residues(), out_path.c_str());

    const std::size_t nq = arg_num(argc, argv, "queries", 0);
    if (nq > 0) {
      const std::string qout = arg_str(argc, argv, "qout", "queries.fasta");
      const std::size_t qlen = arg_num(argc, argv, "qlen", 0);
      Rng rng(seed + 1);
      const SequenceStore queries =
          qlen == 0 ? synth::sample_queries_mixed(db, nq, rng)
                    : synth::sample_queries(db, nq, qlen, rng);
      write_fasta_file(qout, queries);
      std::printf("%zu queries (%s length) -> %s\n", queries.size(),
                  qlen == 0 ? "mixed" : std::to_string(qlen).c_str(),
                  qout.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
