#!/usr/bin/env python3
"""Roll up a mublastp-trace-v1 file into a per-stage / per-thread report.

Usage:
  trace_report.py TRACE.json [--schema=FILE] [--diff=OTHER.json] [--top=N]

Reads the Chrome trace-event JSON written by `mublastp_search --trace=FILE`
and prints:
  * the run header (engine, kernel, threads, shards, dropped spans);
  * a per-stage rollup: span count, total/mean/max duration, share of wall
    time, and per-stage hardware-counter totals when the trace carries them;
  * per-thread utilization: the fraction of the wall each (process, thread)
    timeline spent inside stage spans;
  * the critical path over the shard fan-out: index load -> slowest shard
    worker -> merge, with the measured shard imbalance.

--schema=FILE validates the trace against the checked-in JSON Schema
(docs/mublastp-trace-v1.schema.json) before reporting, using the embedded
subset validator below (type, properties, required, items, enum, const,
minimum, anyOf) — no third-party jsonschema dependency.

--diff=OTHER.json compares per-stage totals between two traces (e.g. two
kernels, or traced runs before and after a change) and prints the deltas.

Exit codes: 0 ok, 1 report error, 2 usage, 3 schema validation failure.

Everything here is stdlib-only by design.
"""

import json
import sys
from collections import defaultdict

STAGE_ORDER = [
    "hit_detect", "sort", "ungapped", "gapped", "finalize",
    "flatten", "index_load", "shard_worker", "batch", "merge",
]
COUNTER_KEYS = ("cycles", "instructions", "llc_misses", "branch_misses")


# ---------------------------------------------------------------------------
# Embedded JSON Schema subset validator
# ---------------------------------------------------------------------------

def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    return True  # unknown type keyword: don't reject


def validate(value, schema, path="$"):
    """Returns a list of error strings (empty = valid).

    Supports the subset the checked-in schemas use: type, properties,
    required, items, enum, const, minimum, anyOf.
    """
    errors = []
    if "const" in schema and value != schema["const"]:
        errors.append("%s: expected const %r, got %r"
                      % (path, schema["const"], value))
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" % (path, value, schema["enum"]))
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append("%s: expected type %s, got %s"
                      % (path, schema["type"], type(value).__name__))
        return errors  # structural checks below assume the type matched
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r below minimum %r"
                      % (path, value, schema["minimum"]))
    if "anyOf" in schema:
        branches = [validate(value, sub, path) for sub in schema["anyOf"]]
        if not any(not errs for errs in branches):
            flat = branches[0] if branches else []
            errors.append("%s: matched no anyOf branch (first branch: %s)"
                          % (path, "; ".join(flat[:2]) or "empty"))
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append("%s: missing required key %r" % (path, key))
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], sub,
                                       "%s.%s" % (path, key)))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"],
                                   "%s[%d]" % (path, i)))
    return errors


# ---------------------------------------------------------------------------
# Rollups
# ---------------------------------------------------------------------------

def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        trace = json.load(f)
    if trace.get("schema") != "mublastp-trace-v1":
        raise ValueError("%s: not a mublastp-trace-v1 file (schema=%r)"
                         % (path, trace.get("schema")))
    return trace


def complete_events(trace):
    return [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]


def wall_span_us(events):
    if not events:
        return 0.0
    begin = min(e["ts"] for e in events)
    end = max(e["ts"] + e["dur"] for e in events)
    return end - begin


def stage_rollup(events):
    """name -> dict(count, total_us, max_us, counters)."""
    roll = defaultdict(lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0,
                                "counters": defaultdict(int)})
    for e in events:
        r = roll[e["name"]]
        r["count"] += 1
        r["total_us"] += e["dur"]
        r["max_us"] = max(r["max_us"], e["dur"])
        args = e.get("args", {})
        for key in COUNTER_KEYS:
            if key in args:
                r["counters"][key] += args[key]
    return roll


def thread_rollup(events):
    """(pid, tid) -> busy microseconds inside 'stage' spans."""
    busy = defaultdict(float)
    for e in events:
        if e.get("cat") == "stage":
            busy[(e["pid"], e["tid"])] += e["dur"]
    return busy


def fmt_us(us):
    if us >= 1e6:
        return "%.3fs" % (us / 1e6)
    if us >= 1e3:
        return "%.3fms" % (us / 1e3)
    return "%.1fus" % us


def print_report(trace, top):
    events = complete_events(trace)
    other = trace.get("otherData", {})
    print("trace: engine=%s kernel=%s threads=%s shards=%s spans=%d"
          " dropped=%s counters=%s"
          % (other.get("engine", "?"), other.get("kernel", "?"),
             other.get("threads", "?"), other.get("shards", "?"),
             len(events), other.get("dropped_spans", "?"),
             other.get("counters", False)))
    wall = wall_span_us(events)
    print("wall: %s" % fmt_us(wall))

    roll = stage_rollup(events)
    print("\nper-stage rollup:")
    print("  %-12s %8s %12s %12s %12s %7s"
          % ("stage", "spans", "total", "mean", "max", "wall%"))
    names = [n for n in STAGE_ORDER if n in roll]
    names += sorted(n for n in roll if n not in STAGE_ORDER)
    for name in names:
        r = roll[name]
        mean = r["total_us"] / r["count"] if r["count"] else 0.0
        share = 100.0 * r["total_us"] / wall if wall > 0 else 0.0
        print("  %-12s %8d %12s %12s %12s %6.1f%%"
              % (name, r["count"], fmt_us(r["total_us"]), fmt_us(mean),
                 fmt_us(r["max_us"]), share))
        if r["counters"]:
            parts = ["%s=%d" % (k, r["counters"][k])
                     for k in COUNTER_KEYS if k in r["counters"]]
            print("  %-12s %s" % ("", " ".join(parts)))

    busy = thread_rollup(events)
    if busy:
        print("\nper-thread utilization (stage spans / wall):")
        rows = sorted(busy.items(),
                      key=lambda kv: kv[1], reverse=True)[:top]
        for (pid, tid), us in rows:
            util = 100.0 * us / wall if wall > 0 else 0.0
            print("  pid %-3d tid %-4d busy %12s  %6.1f%%"
                  % (pid, tid, fmt_us(us), util))

    workers = [e for e in events if e["name"] == "shard_worker"]
    if workers:
        print("\nshard fan-out critical path:")
        load = [e for e in events if e["name"] == "index_load"]
        merge = [e for e in events if e["name"] == "merge"]
        slowest = max(workers, key=lambda e: e["dur"])
        fastest = min(workers, key=lambda e: e["dur"])
        path_us = 0.0
        if load:
            path_us += sum(e["dur"] for e in load)
            print("  index_load             %12s"
                  % fmt_us(sum(e["dur"] for e in load)))
        print("  slowest shard worker   %12s  (shard %s)"
              % (fmt_us(slowest["dur"]),
                 slowest.get("args", {}).get("shard", "?")))
        path_us += slowest["dur"]
        if merge:
            path_us += sum(e["dur"] for e in merge)
            print("  merge                  %12s"
                  % fmt_us(sum(e["dur"] for e in merge)))
        print("  critical path          %12s" % fmt_us(path_us))
        if slowest["dur"] > 0:
            imb = (slowest["dur"] - fastest["dur"]) / slowest["dur"]
            print("  worker imbalance       %11.1f%%  "
                  "(slowest %s vs fastest %s)"
                  % (100.0 * imb, fmt_us(slowest["dur"]),
                     fmt_us(fastest["dur"])))


def print_diff(trace_a, trace_b, name_a, name_b):
    roll_a = stage_rollup(complete_events(trace_a))
    roll_b = stage_rollup(complete_events(trace_b))
    names = [n for n in STAGE_ORDER if n in roll_a or n in roll_b]
    names += sorted(n for n in set(roll_a) | set(roll_b)
                    if n not in STAGE_ORDER)
    print("\nper-stage diff (%s -> %s):" % (name_a, name_b))
    print("  %-12s %12s %12s %9s" % ("stage", "A total", "B total", "ratio"))
    for name in names:
        a_us = roll_a.get(name, {}).get("total_us", 0.0)
        b_us = roll_b.get(name, {}).get("total_us", 0.0)
        ratio = "%.3fx" % (b_us / a_us) if a_us > 0 else "n/a"
        print("  %-12s %12s %12s %9s"
              % (name, fmt_us(a_us), fmt_us(b_us), ratio))


def main(argv):
    trace_path = None
    schema_path = None
    diff_path = None
    top = 16
    for arg in argv[1:]:
        if arg.startswith("--schema="):
            schema_path = arg.split("=", 1)[1]
        elif arg.startswith("--diff="):
            diff_path = arg.split("=", 1)[1]
        elif arg.startswith("--top="):
            top = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print("error: unknown option %r" % arg, file=sys.stderr)
            return 2
        elif trace_path is None:
            trace_path = arg
        else:
            print("error: more than one trace file given", file=sys.stderr)
            return 2
    if trace_path is None:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: trace_report.py TRACE.json [--schema=FILE]"
              " [--diff=OTHER.json] [--top=N]", file=sys.stderr)
        return 2

    try:
        trace = load_trace(trace_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 1

    if schema_path is not None:
        try:
            with open(schema_path, "r", encoding="utf-8") as f:
                schema = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print("error: cannot load schema: %s" % e, file=sys.stderr)
            return 1
        errors = validate(trace, schema)
        if errors:
            print("schema validation FAILED (%d error(s)):" % len(errors),
                  file=sys.stderr)
            for err in errors[:20]:
                print("  %s" % err, file=sys.stderr)
            return 3
        print("schema validation OK (%s)" % schema_path)

    print_report(trace, top)

    if diff_path is not None:
        try:
            other = load_trace(diff_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print("error: %s" % e, file=sys.stderr)
            return 1
        print_diff(trace, other, trace_path, diff_path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Piped into head/grep that exited early: not an error.
        sys.exit(0)
