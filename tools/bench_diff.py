#!/usr/bin/env python3
"""Compare two mublastp-bench-v1 JSON files and flag perf regressions.

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--threshold=0.10] [--absolute]

Compares the per-kernel speedup_vs_scalar ratios (the machine-independent
signal perf_regress.cpp computes: vector kernel time relative to the scalar
kernel in the SAME run, so a slow CI box cancels out) over the kernels and
stages present in BOTH files, and prints the delta for each.

A cell regresses when the candidate's speedup falls more than THRESHOLD
(default 0.10 = 10%) below the baseline's. Any regression makes the exit
code 1, so the CI perf-smoke job can gate on it.

--absolute additionally compares raw per-kernel stage_seconds — only
meaningful when both files came from the same machine (e.g. a before/after
pair from one box), so it never affects the exit code across files from
different machines unless you ask for it.

Exit codes: 0 no regressions, 1 regression found, 2 usage / bad input.

Stdlib-only by design.
"""

import json
import sys

STAGES = ("hit_detect", "ungapped", "gapped", "total")


def load_bench(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "mublastp-bench-v1":
        raise ValueError("%s: not a mublastp-bench-v1 file (schema=%r)"
                         % (path, doc.get("schema")))
    return doc


def main(argv):
    paths = []
    threshold = 0.10
    absolute = False
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--absolute":
            absolute = True
        elif arg.startswith("--"):
            print("error: unknown option %r" % arg, file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py BASELINE.json CANDIDATE.json"
              " [--threshold=0.10] [--absolute]", file=sys.stderr)
        return 2

    try:
        base = load_bench(paths[0])
        cand = load_bench(paths[1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 2

    base_speed = base.get("speedup_vs_scalar", {})
    cand_speed = cand.get("speedup_vs_scalar", {})
    kernels = [k for k in base_speed if k in cand_speed]
    if not kernels:
        print("error: no common kernels between %s and %s"
              % (paths[0], paths[1]), file=sys.stderr)
        return 2
    skipped = sorted(set(base_speed) ^ set(cand_speed))
    if skipped:
        print("note: kernels present in only one file are skipped: %s"
              % ", ".join(skipped))

    print("speedup_vs_scalar: %s -> %s (regression threshold %.0f%%)"
          % (paths[0], paths[1], 100.0 * threshold))
    print("  %-16s %-10s %9s %9s %8s  %s"
          % ("kernel", "stage", "baseline", "candidate", "delta", "verdict"))
    regressions = 0
    for kernel in kernels:
        for stage in STAGES:
            b = base_speed[kernel].get(stage)
            c = cand_speed[kernel].get(stage)
            if b is None or c is None:
                continue
            delta = (c - b) / b if b > 0 else 0.0
            regressed = b > 0 and delta < -threshold
            verdict = "REGRESSED" if regressed else "ok"
            regressions += regressed
            print("  %-16s %-10s %8.3fx %8.3fx %+7.1f%%  %s"
                  % (kernel, stage, b, c, 100.0 * delta, verdict))

    if absolute:
        base_runs = {r["kernel"]: r for r in base.get("runs", [])}
        cand_runs = {r["kernel"]: r for r in cand.get("runs", [])}
        print("\nabsolute stage_seconds (same-machine comparisons only):")
        print("  %-16s %-10s %10s %10s %8s"
              % ("kernel", "stage", "baseline", "candidate", "ratio"))
        for kernel in sorted(set(base_runs) & set(cand_runs)):
            b_secs = base_runs[kernel].get("stage_seconds", {})
            c_secs = cand_runs[kernel].get("stage_seconds", {})
            rows = list(b_secs) + ["total"]
            for stage in rows:
                b = (base_runs[kernel].get("total_seconds")
                     if stage == "total" else b_secs.get(stage))
                c = (cand_runs[kernel].get("total_seconds")
                     if stage == "total" else c_secs.get(stage))
                if b is None or c is None:
                    continue
                ratio = "%.3fx" % (c / b) if b > 0 else "n/a"
                print("  %-16s %-10s %9.4fs %9.4fs %8s"
                      % (kernel, stage, b, c, ratio))

    if regressions:
        print("\n%d regression(s) beyond the %.0f%% threshold"
              % (regressions, 100.0 * threshold))
        return 1
    print("\nno regressions beyond the %.0f%% threshold"
          % (100.0 * threshold))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Piped into head/grep that exited early: not an error.
        sys.exit(0)
