# Sharded-vs-unsharded differential check, run as a ctest script:
# search the same queries against the single index and against the 3-shard
# manifest (both worker modes) and require byte-identical tabular output.
# Driven by tools/CMakeLists.txt (tool_search_sharded_matches_unsharded).
foreach(var SEARCH INDEX MANIFEST QUERY WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_e2e.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${SEARCH} --index=${INDEX} --query=${QUERY} --outfmt=tabular
          --out=${WORKDIR}/shard_e2e_unsharded.tab
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "unsharded search failed (exit ${rc})")
endif()

foreach(mode thread process)
  execute_process(
    COMMAND ${SEARCH} --shards-manifest=${MANIFEST} --query=${QUERY}
            --outfmt=tabular --shard-mode=${mode}
            --out=${WORKDIR}/shard_e2e_${mode}.tab
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sharded search (${mode}) failed (exit ${rc})")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/shard_e2e_unsharded.tab
            ${WORKDIR}/shard_e2e_${mode}.tab
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "sharded (${mode}) tabular output differs from unsharded")
  endif()
endforeach()
message(STATUS "sharded output byte-identical to unsharded (both modes)")
