// mublastp_dbinfo: inspect a saved database index — block layout, footprint
// breakdown, word-list statistics, and the last-hit-array budget that the
// b = L3/(2t+1) formula reasons about.
//
// When `mublastp_makedb --append` has published a MUGEN01 generation next
// to --index, the tool first reports the generation chain (every member
// with its id offset, counts and checksum; stale generations awaiting
// --compact GC; orphaned temp files from a crashed publish) and then dumps
// each member index in chain order. A corrupt newest manifest fails closed
// with exit 5 — the same contract as mublastp_search.
//
// Usage: mublastp_dbinfo --index=db.mbi [--threads=12] [--l3-mb=30]
//
// Exit codes: 0 ok, 1 generic failure, 2 usage error, 4 I/O error,
// 5 corrupt input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "index/db_index_io.hpp"
#include "index/generation.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_num(int argc, char** argv, const std::string& key,
                    std::size_t fallback) {
  const std::string v = arg_str(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

double mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1 << 20);
}

/// The full single-index report (file sections, blocks, word lists, cache
/// budget) — one call per chain member.
void describe_index(const std::string& path, int threads, std::size_t l3) {
  // File-level description first: format version and, for v3, the
  // checksummed section table the mmap loader navigates by.
  const DbIndexFileInfo finfo = describe_db_index_file(path);
  const DbIndex index = load_db_index_file(path);
  const SequenceStore& db = index.db();

  std::printf("index file        : %s\n", path.c_str());
  std::printf("format            : v%u, %llu bytes%s\n", finfo.version,
              static_cast<unsigned long long>(finfo.file_bytes),
              finfo.version >= kDbIndexFormatVersion
                  ? " (mmap-able, checksummed sections)"
                  : " (legacy streamed; copy-load only)");
  for (const IndexSectionInfo& s : finfo.sections) {
    std::printf("  section %-12s offset=%-10llu length=%-10llu"
                " crc32=%08x\n",
                s.name.c_str(), static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.length), s.crc32);
  }
  std::printf("sequences         : %zu (%zu residues)\n", db.size(),
              db.total_residues());
  std::printf("neighbor threshold: T=%d (%zu word-neighbor pairs, avg "
              "%.1f/word)\n",
              index.neighbors().threshold(),
              index.neighbors().total_neighbors(),
              static_cast<double>(index.neighbors().total_neighbors()) /
                  kNumWords);
  std::printf("config block size : %zu KB positions, long-seq limit %zu\n",
              index.config().block_bytes / 1024,
              index.config().long_seq_limit);

  std::size_t positions = 0;
  std::size_t frags = 0;
  std::size_t entry_bytes = 0;
  std::size_t offset_bytes = 0;
  std::size_t max_block_positions = 0;
  for (const DbIndexBlock& b : index.blocks()) {
    positions += b.num_positions();
    frags += b.fragments().size();
    entry_bytes += b.position_bytes();
    offset_bytes += (static_cast<std::size_t>(kNumWords) + 1) * 4;
    max_block_positions = std::max(max_block_positions, b.num_positions());
  }
  std::printf("blocks            : %zu (%zu fragments, %zu positions)\n",
              index.blocks().size(), frags, positions);
  std::printf("footprint         : %.1f MB entries + %.1f MB offsets + "
              "%.1f MB residues\n",
              mb(entry_bytes), mb(offset_bytes), mb(db.total_residues()));

  // Per-block table (first few + largest).
  std::printf("\n%-6s %10s %10s %12s %10s\n", "block", "frags",
              "positions", "chars", "maxfrag");
  const std::size_t show = std::min<std::size_t>(index.blocks().size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    const DbIndexBlock& b = index.blocks()[i];
    std::printf("%-6zu %10zu %10zu %12zu %10zu\n", i, b.fragments().size(),
                b.num_positions(), b.total_chars(), b.max_fragment_len());
  }
  if (index.blocks().size() > show) {
    std::printf("... %zu more blocks\n", index.blocks().size() - show);
  }

  // Word-list population statistics of the largest block.
  const DbIndexBlock& big = *std::max_element(
      index.blocks().begin(), index.blocks().end(),
      [](const DbIndexBlock& a, const DbIndexBlock& b) {
        return a.num_positions() < b.num_positions();
      });
  std::size_t empty_words = 0;
  std::size_t max_list = 0;
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
       ++w) {
    const std::size_t n = big.entries(w).size();
    if (n == 0) ++empty_words;
    max_list = std::max(max_list, n);
  }
  std::printf("\nlargest block: %zu positions; %zu/%d words empty "
              "(%.1f%%), longest word list %zu\n",
              big.num_positions(), empty_words, kNumWords,
              100.0 * static_cast<double>(empty_words) / kNumWords,
              max_list);

  // The Section V-B cache budget.
  std::printf("\ncache budget (t=%d, L3=%zu MB): block %zu KB + t x "
              "last-hit ~2x block = %.1f MB %s L3\n",
              threads, l3 >> 20, index.config().block_bytes / 1024,
              mb(index.config().block_bytes *
                 (1 + 2 * static_cast<std::size_t>(threads))),
              index.config().block_bytes *
                          (1 + 2 * static_cast<std::size_t>(threads)) <=
                      l3
                  ? "<= fits"
                  : "> EXCEEDS");
  std::printf("recommended block for this machine: %zu KB "
              "(b = L3/(2t+1))\n",
              DbIndex::optimal_block_bytes(l3, threads) / 1024);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = arg_str(argc, argv, "index", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: mublastp_dbinfo --index=db.mbi [--threads=12]"
                 " [--l3-mb=30]\n");
    return 2;
  }
  const int threads = static_cast<int>(arg_num(argc, argv, "threads", 12));
  const std::size_t l3 = arg_num(argc, argv, "l3-mb", 30) << 20;
  try {
    // Generation resolution (docs/INCREMENTAL.md): describe the newest
    // published chain if one exists, else the bare file.
    const ResolvedGeneration resolved = resolve_generations(path);
    if (resolved.manifest.has_value()) {
      const GenerationManifest& m = *resolved.manifest;
      std::printf("generation        : %u (%s)\n", resolved.generation,
                  resolved.manifest_path.c_str());
      std::printf("chain             : %zu member(s), %llu sequences,"
                  " %llu residues\n",
                  m.members.size(),
                  static_cast<unsigned long long>(m.total_sequences),
                  static_cast<unsigned long long>(m.total_residues));
      for (std::size_t k = 0; k < m.members.size(); ++k) {
        const GenerationMember& gm = m.members[k];
        std::printf("  member %-3zu %-28s id_offset=%-10llu"
                    " %llu seqs, %llu residues, crc32=%08x\n",
                    k, resolved.member_paths[k].c_str(),
                    static_cast<unsigned long long>(gm.id_offset),
                    static_cast<unsigned long long>(gm.num_sequences),
                    static_cast<unsigned long long>(gm.num_residues),
                    gm.index_crc32);
      }
      std::size_t stale = 0;
      for (const std::uint32_t g : resolved.all_generations) {
        if (g != resolved.generation) ++stale;
      }
      if (stale != 0) {
        std::printf("stale generations : %zu awaiting --compact GC\n",
                    stale);
      }
      if (!resolved.orphan_temps.empty()) {
        std::printf("orphan temps      : %zu (crashed publish; the next"
                    " --append/--compact removes them)\n",
                    resolved.orphan_temps.size());
        for (const std::string& t : resolved.orphan_temps) {
          std::printf("  %s\n", t.c_str());
        }
      }
      for (std::size_t k = 0; k < resolved.member_paths.size(); ++k) {
        std::printf("\n--- member %zu ---\n", k);
        describe_index(resolved.member_paths[k], threads, l3);
      }
    } else {
      describe_index(path, threads, l3);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.kind());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
