// Quickstart: build a database index, search one query, print alignments.
//
// Usage: quickstart [seed]
//
// Generates a small synthetic protein database (stand-in for uniprot_sprot;
// see DESIGN.md), indexes it, picks a query from it, and runs the full
// muBLASTP pipeline, printing the top alignments BLAST-report style.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A ~2M-residue database shaped like uniprot_sprot.
  const synth::DatabaseSpec spec = synth::sprot_like(std::size_t{1} << 21);
  std::printf("generating %s (~%zu residues, seed %llu)...\n",
              spec.name.c_str(), spec.target_residues,
              static_cast<unsigned long long>(seed));
  const SequenceStore db = synth::generate_database(spec, seed);
  std::printf("  %zu sequences, %zu residues\n", db.size(),
              db.total_residues());

  // 2. Build the blocked database index (overlapping + neighboring words).
  Timer t;
  DbIndexConfig config;
  config.block_bytes = 512 * 1024;
  const DbIndex index = DbIndex::build(db, config);
  std::printf("indexed into %zu blocks in %.2fs (T=%d neighbor threshold)\n",
              index.blocks().size(), t.seconds(),
              index.neighbors().threshold());

  // 3. Pick a 256-residue query out of the database.
  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, 1, 256, rng);
  const auto query = queries.sequence(0);
  std::printf("query: %s (%zu residues)\n", queries.name(0).c_str(),
              query.size());

  // 4. Search with muBLASTP (pre-filter + LSD radix reordering).
  const MuBlastpEngine engine(index);
  t.reset();
  const QueryResult result = engine.search(query);
  std::printf(
      "search: %.3fs | hits %llu -> pairs %llu (%.1f%% survive pre-filter) "
      "-> extensions %llu -> ungapped %llu -> gapped %llu\n",
      t.seconds(), static_cast<unsigned long long>(result.stats.hits),
      static_cast<unsigned long long>(result.stats.hit_pairs),
      100.0 * static_cast<double>(result.stats.hit_pairs) /
          static_cast<double>(result.stats.hits ? result.stats.hits : 1),
      static_cast<unsigned long long>(result.stats.extensions),
      static_cast<unsigned long long>(result.stats.ungapped_alignments),
      static_cast<unsigned long long>(result.stats.gapped_extensions));

  // 5. Report the top alignments.
  std::printf("\n%-24s %7s %9s %10s %-s\n", "subject", "score", "bits",
              "evalue", "region");
  const std::size_t top = std::min<std::size_t>(result.alignments.size(), 10);
  for (std::size_t i = 0; i < top; ++i) {
    const GappedAlignment& a = result.alignments[i];
    std::printf("%-24s %7d %9.1f %10.2e q[%u,%u) s[%u,%u) %zu ops\n",
                db.name(a.subject).c_str(), a.score, a.bit_score, a.evalue,
                a.q_start, a.q_end, a.s_start, a.s_end, a.ops.size());
  }
  if (result.alignments.empty()) {
    std::printf("(no alignments above the reporting cutoffs)\n");
  }
  return 0;
}
