// Planning a cluster deployment: given a database shape and a node budget,
// compare the muBLASTP multi-node design against an mpiBLAST-style layout
// using the discrete-event simulator, with task costs calibrated against
// the real engine on this machine (paper Section IV-D / Figure 10).
//
// Usage: cluster_search [--nodes=N] [--seqs=M] [--seed=S]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

std::size_t arg(int argc, char** argv, const std::string& key,
                std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = arg(argc, argv, "seed", 13);
  const int nodes = static_cast<int>(arg(argc, argv, "nodes", 32));
  const std::size_t num_seqs = arg(argc, argv, "seqs", 1000000);

  // Calibrate the cost model with a real muBLASTP run on a small database.
  const SequenceStore calib_db =
      synth::generate_database(synth::envnr_like(std::size_t{1} << 20), seed);
  const DbIndex index = DbIndex::build(calib_db, {});
  const MuBlastpEngine engine(index);
  Rng rng(seed + 1);
  const SequenceStore calib_q = synth::sample_queries(calib_db, 2, 256, rng);
  Timer t;
  for (SeqId q = 0; q < calib_q.size(); ++q) {
    (void)engine.search(calib_q.sequence(q));
  }
  cluster::CostModelParams cost;
  cost.sec_per_cell = t.seconds() / static_cast<double>(calib_q.size()) /
                      (256.0 * static_cast<double>(calib_db.total_residues()));
  std::printf("calibrated kernel speed: %.2e s per (query-char x db-char)\n",
              cost.sec_per_cell);

  // Target database: env_nr-like lengths at the requested sequence count.
  Rng len_rng(seed + 2);
  std::vector<std::size_t> lens(num_seqs);
  for (auto& l : lens) {
    double v;
    do {
      v = std::exp(std::log(177.0) +
                   std::sqrt(2.0 * std::log(197.0 / 177.0)) *
                       len_rng.next_normal());
    } while (v < 40 || v > 5000);
    l = static_cast<std::size_t>(v);
  }
  std::vector<std::size_t> qlens(128);
  for (auto& q : qlens) q = lens[len_rng.next_below(lens.size())];

  std::printf("target: %zu sequences, batch of %zu queries, %d nodes x 16 "
              "cores\n\n", num_seqs, qlens.size(), nodes);

  const auto mu_parts = cluster::partition_chars_round_robin_sorted(lens, nodes);
  cluster::MuBlastpClusterConfig mu_cfg;
  mu_cfg.nodes = nodes;
  const double mu_time = cluster::simulate_mublastp(
      cluster::cost_matrix(qlens, mu_parts, cost, seed), mu_cfg);

  const auto mpi_frags = cluster::partition_chars_contiguous(lens, nodes * 16);
  cluster::MpiBlastClusterConfig mpi_cfg;
  mpi_cfg.nodes = nodes;
  const double mpi_time = cluster::simulate_mpiblast(
      cluster::cost_matrix(qlens, mpi_frags, cost, seed), mpi_cfg);

  std::printf("muBLASTP design  (1 proc x 16 threads, round-robin sorted "
              "partitions, batch merge): %8.1f s\n", mu_time);
  std::printf("mpiBLAST design  (16 procs, contiguous fragments, per-query "
              "merge):                  %8.1f s\n", mpi_time);
  std::printf("\nprojected advantage of the muBLASTP design: %.2fx\n",
              mpi_time / mu_time);

  // Partition balance diagnostic (the paper's load-balance argument).
  const auto spread = [](const std::vector<double>& v) {
    double lo = v[0], hi = v[0];
    for (const double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return 100.0 * (hi - lo) / hi;
  };
  std::printf("partition residue spread: round-robin %.2f%%, contiguous "
              "%.2f%%\n", spread(mu_parts), spread(mpi_frags));
  return 0;
}
