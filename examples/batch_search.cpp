// Batch annotation: search a batch of mixed-length queries against a
// database with the multithreaded pipeline (paper Algorithm 3) and print a
// per-query summary — the "many queries against one reusable index"
// workflow database-indexed BLAST exists for.
//
// Usage: batch_search [--queries=N] [--threads=T] [--residues=R] [--seed=S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

std::size_t arg(int argc, char** argv, const std::string& key,
                std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = arg(argc, argv, "seed", 7);
  const std::size_t residues = arg(argc, argv, "residues", std::size_t{1} << 22);
  const std::size_t nqueries = arg(argc, argv, "queries", 32);
  const int threads = static_cast<int>(arg(argc, argv, "threads", 4));

  const SequenceStore db =
      synth::generate_database(synth::envnr_like(residues), seed);
  std::printf("database: %zu sequences, %zu residues\n", db.size(),
              db.total_residues());

  // Size blocks with the paper's formula for this thread count, assuming a
  // 30MB LLC (Section V-B).
  DbIndexConfig cfg;
  cfg.block_bytes = DbIndex::optimal_block_bytes(30u << 20, threads);
  const DbIndex index = DbIndex::build(db, cfg);
  std::printf("index: %zu blocks of <=%zu KB positions (b = L3/(2t+1))\n",
              index.blocks().size(), cfg.block_bytes / 1024);

  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries_mixed(db, nqueries, rng);

  const MuBlastpEngine engine(index);
  Timer t;
  const std::vector<QueryResult> results = engine.search_batch(queries, threads);
  const double elapsed = t.seconds();

  std::printf("\n%-6s %-8s %-10s %-12s %-24s %8s %10s\n", "query", "length",
              "hits", "alignments", "best subject", "score", "evalue");
  StageStats total;
  for (SeqId q = 0; q < queries.size(); ++q) {
    const QueryResult& r = results[q];
    total += r.stats;
    if (r.alignments.empty()) {
      std::printf("%-6u %-8zu %-10llu %-12zu %-24s\n", q, queries.length(q),
                  static_cast<unsigned long long>(r.stats.hits),
                  r.alignments.size(), "-");
      continue;
    }
    const GappedAlignment& best = r.alignments.front();
    std::printf("%-6u %-8zu %-10llu %-12zu %-24s %8d %10.2e\n", q,
                queries.length(q),
                static_cast<unsigned long long>(r.stats.hits),
                r.alignments.size(), db.name(best.subject).c_str(),
                best.score, best.evalue);
  }
  std::printf(
      "\nbatch of %zu queries in %.2fs with %d thread(s) "
      "(%.1f queries/s)\n",
      queries.size(), elapsed, threads,
      static_cast<double>(queries.size()) / elapsed);
  std::printf("pipeline totals: %llu hits -> %llu pairs -> %llu ungapped -> "
              "%llu gapped extensions\n",
              static_cast<unsigned long long>(total.hits),
              static_cast<unsigned long long>(total.hit_pairs),
              static_cast<unsigned long long>(total.ungapped_alignments),
              static_cast<unsigned long long>(total.gapped_extensions));
  return 0;
}
