// Demonstrates the paper's core diagnosis (Section II-B / Figure 2): run
// the same query through the three engines with the trace-driven memory
// hierarchy attached and show how the database index destroys locality in
// the interleaved pipeline — and how muBLASTP's reordering restores it.
//
// Usage: irregularity_profile [--residues=R] [--qlen=L] [--seed=S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

std::size_t arg(int argc, char** argv, const std::string& key,
                std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

void report(const char* label, const mublastp::memsim::MemStats& s) {
  std::printf("%-28s %10llu %9.2f%% %9.3f%% %9.2f%%\n", label,
              static_cast<unsigned long long>(s.references),
              100.0 * s.llc_miss_rate(), 100.0 * s.tlb_miss_rate(),
              100.0 * s.stalled_cycle_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = arg(argc, argv, "seed", 5);
  const std::size_t residues = arg(argc, argv, "residues", std::size_t{1} << 21);
  const std::size_t qlen = arg(argc, argv, "qlen", 256);

  const SequenceStore db =
      synth::generate_database(synth::envnr_like(residues), seed);
  // NCBI-db indexes the database whole (one giant block: the pre-blocking
  // state of the art the paper profiles); muBLASTP uses its blocked index
  // sized by the Section V-B formula.
  DbIndexConfig whole_cfg;
  whole_cfg.block_bytes = std::size_t{1} << 30;
  const DbIndex whole_index = DbIndex::build(db, whole_cfg);
  DbIndexConfig blocked_cfg;
  blocked_cfg.block_bytes = 512 * 1024;
  const DbIndex blocked_index = DbIndex::build(db, blocked_cfg);

  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, 1, qlen, rng);
  const auto query = queries.sequence(0);

  std::printf("database %zu residues, one query of length %zu\n"
              "simulated hierarchy: 32KB L1 / 256KB L2 / 30MB L3, 64+1024 "
              "entry TLBs (Haswell)\n\n",
              db.total_residues(), qlen);
  std::printf("%-30s %10s %10s %10s %10s\n", "engine", "refs", "LLC miss",
              "TLB miss", "stalled");

  const QueryIndexedEngine ncbi(db);
  memsim::MemoryHierarchy h1;
  ncbi.search_traced(query, h1);
  report("NCBI (query index)", h1.stats());

  const InterleavedDbEngine ncbi_db(whole_index);
  memsim::MemoryHierarchy h2;
  ncbi_db.search_traced(query, h2);
  report("NCBI-db (whole-db index)", h2.stats());

  const MuBlastpEngine mu(blocked_index);
  memsim::MemoryHierarchy h3;
  mu.search_traced(query, h3);
  report("muBLASTP (blocked+reordered)", h3.stats());

  std::printf("\nreading the table:\n"
              " * NCBI streams one subject at a time -> prefetch-friendly,\n"
              "   low TLB pressure, few stalls;\n"
              " * NCBI-db jumps between subjects and last-hit arrays on\n"
              "   every hit -> TLB and LLC thrash (the paper's Figure 2);\n"
              " * muBLASTP touches the same structures but in sorted order\n"
              "   -> locality restored while keeping the database index.\n");
  return 0;
}
