// Figure 9: single-node performance comparison of NCBI (query-indexed),
// NCBI-db (database-indexed, interleaved) and muBLASTP on uniprot_sprot and
// env_nr, for query batches of length 128/256/512/mixed.
//
// Paper's headline numbers: muBLASTP up to 5.1x over NCBI and 3.3x over
// NCBI-db on sprot; up to 3.3x over NCBI and 3.9x over NCBI-db on env_nr;
// NCBI-db is SLOWER than NCBI on the larger env_nr database.
//
// The container has one core, so the batch runs single-threaded; the
// paper's engine ordering is thread-count independent (all engines
// parallelize over queries the same way).
#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "bench_common.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170909);
  const std::size_t sprot_res =
      bench::arg_size(argc, argv, "sprot_residues", std::size_t{1} << 22);
  const std::size_t envnr_res =
      bench::arg_size(argc, argv, "envnr_residues", std::size_t{1} << 23);
  const std::size_t batch = bench::arg_size(argc, argv, "batch", 16);
  const int threads =
      static_cast<int>(bench::arg_size(argc, argv, "threads", 1));
  bench::print_header("Figure 9", "NCBI vs NCBI-db vs muBLASTP, single node",
                      seed);

  for (const bool env : {false, true}) {
    const synth::DatabaseSpec spec = env ? synth::envnr_like(envnr_res)
                                         : synth::sprot_like(sprot_res);
    const SequenceStore db = bench::make_db(spec, seed);
    DbIndexConfig cfg;
    cfg.block_bytes = 512 * 1024;
    Timer build_timer;
    const DbIndex index = DbIndex::build(db, cfg);
    std::printf("[setup] index: %zu blocks, built in %.2fs (excluded from "
                "timings, as in the paper)\n",
                index.blocks().size(), build_timer.seconds());

    const QueryIndexedEngine ncbi(db);
    const InterleavedDbEngine ncbi_db(index);
    const MuBlastpEngine mu(index);

    std::printf("\n[%s] batch of %zu queries, %d thread(s)\n",
                spec.name.c_str(), batch, threads);
    std::printf("%-8s %10s %10s %10s %12s %12s\n", "queries", "NCBI(s)",
                "NCBI-db(s)", "muBLASTP(s)", "mu vs NCBI", "mu vs NCBI-db");

    for (const std::string& label : {std::string("128"), std::string("256"),
                                     std::string("512"),
                                     std::string("mixed")}) {
      Rng rng(seed + label.size() + label[0]);
      const SequenceStore queries =
          label == "mixed"
              ? synth::sample_queries_mixed(db, batch, rng)
              : synth::sample_queries(
                    db, batch, std::strtoull(label.c_str(), nullptr, 10),
                    rng);

      const auto run = [&](const auto& engine) {
        Timer t;
        (void)engine.search_batch(queries, threads);
        return t.seconds();
      };
      const double t_ncbi = run(ncbi);
      const double t_db = run(ncbi_db);
      const double t_mu = run(mu);
      std::printf("%-8s %10.3f %10.3f %10.3f %11.2fx %11.2fx\n",
                  label.c_str(), t_ncbi, t_db, t_mu, t_ncbi / t_mu,
                  t_db / t_mu);
    }
  }
  std::printf("\npaper: muBLASTP up to 5.1x (sprot) / 3.3x (env_nr) over "
              "NCBI and 3.3x / 3.9x over NCBI-db;\nNCBI-db slower than NCBI "
              "on env_nr.\n");
  return 0;
}
