// Ablation: database partitioning strategy (paper Section IV-D3).
//
// Compares the balance and the simulated 128-node execution time of the
// three partitioning policies on an env_nr-shaped database: mpiBLAST-style
// contiguous fragments, muBLASTP's length-sorted round-robin, and greedy
// LPT bin packing. Shows why the paper's cheap round-robin policy is
// enough: it is within noise of LPT and far better than contiguous.
#include <cmath>
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/partition.hpp"
#include "common/rng.hpp"

int main() {
  using namespace mublastp;
  using namespace mublastp::cluster;
  const std::uint64_t seed = 20170404;

  // env_nr-shaped lengths, with the realistic input-order length clustering
  // (families uploaded together) that hurts contiguous fragmentation.
  Rng rng(seed);
  std::vector<std::size_t> lens(1000000);
  double drift = 0.0;
  for (auto& l : lens) {
    drift = 0.995 * drift + 0.1 * rng.next_normal();
    double v;
    do {
      v = std::exp(std::log(177.0) + drift +
                   std::sqrt(2.0 * std::log(197.0 / 177.0)) *
                       rng.next_normal());
    } while (v < 40 || v > 5000);
    l = static_cast<std::size_t>(v);
  }
  std::vector<std::size_t> qlens(128);
  for (auto& q : qlens) q = lens[rng.next_below(lens.size())];

  CostModelParams cost;
  cost.sec_per_cell = 1e-10;

  std::printf("partitioning 1M sequences for 128 nodes (muBLASTP design, "
              "one partition per node)\n\n");
  std::printf("%-22s %12s %18s\n", "strategy", "imbalance", "sim time @128");
  for (const PartitionStrategy s :
       {PartitionStrategy::kContiguous, PartitionStrategy::kRoundRobinSorted,
        PartitionStrategy::kGreedyLpt}) {
    const Partitioning part = make_partitioning(lens, 128, s);
    const auto costs = cost_matrix(qlens, part.chars, cost, seed);
    MuBlastpClusterConfig cfg;
    cfg.nodes = 128;
    const double t = simulate_mublastp(costs, cfg);
    std::printf("%-22s %11.3f%% %17.2fs\n", strategy_name(s),
                100.0 * part.imbalance(), t);
  }
  std::printf("\npaper: length-sorted round-robin gives every partition the "
              "same size AND length mix,\nremoving the straggler nodes that "
              "contiguous fragmentation produces.\n");
  return 0;
}
