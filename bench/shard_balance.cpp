// Shard balance: the partitioner's PROMISED balance vs what a real sharded
// run MEASURES, for every strategy x shard count — the static half of the
// paper's multi-node load-balancing argument checked against live workers.
//
// Three numbers per (strategy, N) cell:
//  * predicted  — (max - min) / max of per-shard residue counts, straight
//    from the partitioning (ShardSet::predicted_imbalance);
//  * simulated  — the same ratio over per-shard busy seconds from the
//    fig10 discrete-event cost model (irregularity + homolog hot-spots),
//    i.e. what residue imbalance turns into once per-query cost is noisy;
//  * measured   — the ratio over real per-shard worker wall seconds
//    reported by search_sharded (stats-v1 "shards" object).
//
// Expectation (the paper's Section IV-D story): round-robin-sorted and
// greedy-lpt keep all three near 0; contiguous partitioning of a
// length-skewed database shows residue balance but can still lose on
// measured time (long-sequence blocks cluster in one shard).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "cluster/orchestrator.hpp"
#include "index/db_index.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  namespace cl = mublastp::cluster;

  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170701);
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 21);
  const std::size_t n_queries = bench::arg_size(argc, argv, "queries", 8);
  const int threads =
      static_cast<int>(bench::arg_size(argc, argv, "threads", 4));
  bench::print_header("Shard balance",
                      "predicted vs simulated vs measured imbalance", seed);

  const SequenceStore db =
      bench::make_db(synth::sprot_like(residues), seed);
  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, n_queries, 192, rng);
  std::printf("database: %zu sequences, %zu residues; %zu queries x 192\n\n",
              db.size(), db.total_residues(), queries.size());

  std::vector<std::size_t> seq_lens(db.size());
  for (SeqId i = 0; i < db.size(); ++i) seq_lens[i] = db.length(i);
  std::vector<std::size_t> query_lens(queries.size());
  for (SeqId i = 0; i < queries.size(); ++i) query_lens[i] = queries.length(i);

  std::printf("%-20s %3s  %10s %10s %10s\n", "strategy", "N", "predicted",
              "simulated", "measured");
  for (const cl::PartitionStrategy strategy :
       {cl::PartitionStrategy::kContiguous,
        cl::PartitionStrategy::kRoundRobinSorted,
        cl::PartitionStrategy::kGreedyLpt}) {
    for (const int n : {2, 4, 8}) {
      const cl::Partitioning parts =
          cl::make_partitioning(seq_lens, n, strategy);

      // Simulated: run the fig10 cost model over this exact partitioning
      // and balance the per-shard column sums (each shard searches every
      // query once; no scheduling — sharding is a static assignment).
      const auto costs =
          cl::cost_matrix(query_lens, parts.chars, {}, seed + 2);
      std::vector<double> shard_sec(static_cast<std::size_t>(n), 0.0);
      for (const auto& row : costs) {
        for (std::size_t p = 0; p < row.size(); ++p) shard_sec[p] += row[p];
      }
      const auto [slo, shi] =
          std::minmax_element(shard_sec.begin(), shard_sec.end());
      const double simulated = *shi == 0.0 ? 0.0 : (*shi - *slo) / *shi;

      // Measured: a real sharded search, thread workers.
      const cl::ShardSet set =
          cl::ShardSet::build_in_memory(db, n, strategy, {}, {});
      const cl::ShardedSearchResult res = cl::search_sharded(
          set, queries, threads, cl::ShardWorkerMode::kThread);

      std::printf("%-20s %3d  %10.3f %10.3f %10.3f\n",
                  cl::strategy_name(strategy), n, parts.imbalance(),
                  simulated, res.shards.imbalance_measured);
    }
  }
  std::printf("\nimbalance = (max - min) / max over shards; 0 is perfect.\n");
  return 0;
}
