// Ablation A6: long-sequence splitting (paper Section IV-A).
//
// Compares indexing + searching a database containing very long sequences
// (a) split into bounded fragments with overlapped boundaries plus the
// assembly step, versus (b) indexed whole. Splitting bounds the per-block
// diagonal range (last-hit array size) and keeps blocks homogeneous.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

SequenceStore longtail_db() {
  // env_nr-like background plus a heavy tail of multi-10k sequences.
  SequenceStore db =
      synth::generate_database(synth::envnr_like(std::size_t{1} << 21), 7);
  Rng rng(8);
  for (int i = 0; i < 12; ++i) {
    std::vector<Residue> s(20000 + rng.next_below(20000));
    for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
    db.add(s, "tail" + std::to_string(i));
  }
  return db;
}

struct Fixture {
  SequenceStore db = longtail_db();
  SequenceStore queries;

  Fixture() {
    Rng rng(9);
    queries = synth::sample_queries(db, 4, 256, rng);
  }

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

void run_search(benchmark::State& state, const DbIndexConfig& cfg) {
  const Fixture& f = Fixture::get();
  const DbIndex index = DbIndex::build(f.db, cfg);
  std::size_t max_frag = 0;
  for (const auto& b : index.blocks()) {
    max_frag = std::max(max_frag, b.max_fragment_len());
  }
  state.counters["max_fragment_len"] = static_cast<double>(max_frag);
  const MuBlastpEngine engine(index);
  for (auto _ : state) {
    for (SeqId q = 0; q < f.queries.size(); ++q) {
      benchmark::DoNotOptimize(engine.search(f.queries.sequence(q)));
    }
  }
}

void BM_SplitLongSequences(benchmark::State& state) {
  DbIndexConfig cfg;
  cfg.long_seq_limit = 8192;
  cfg.long_seq_overlap = 128;
  run_search(state, cfg);
}

void BM_WholeLongSequences(benchmark::State& state) {
  DbIndexConfig cfg;
  cfg.long_seq_limit = 1 << 20;  // never split
  run_search(state, cfg);
}

void BM_IndexBuildSplit(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  DbIndexConfig cfg;
  cfg.long_seq_limit = 8192;
  cfg.long_seq_overlap = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DbIndex::build(f.db, cfg));
  }
}

BENCHMARK(BM_SplitLongSequences)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WholeLongSequences)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuildSplit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
