// Figure 6: percentage of hits remaining after pre-filtering, for query
// lengths 128, 256 and 512 on the uniprot_sprot database.
//
// The paper reports that fewer than ~5% of hits survive the pre-filter
// (i.e. become two-hit pairs that must be sorted), which is what makes the
// radix-sort reordering cheap. Each query of the batch is one sample; the
// bench prints the distribution per query length.
#include <algorithm>
#include <numeric>

#include "bench_common.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170606);
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 22);
  const std::size_t batch = bench::arg_size(argc, argv, "batch", 32);
  bench::print_header("Figure 6",
                      "% of hits remaining after pre-filtering, uniprot_sprot",
                      seed);

  const SequenceStore db = bench::make_db(synth::sprot_like(residues), seed);
  DbIndexConfig cfg;
  cfg.block_bytes = 512 * 1024;
  const DbIndex index = DbIndex::build(db, cfg);
  const MuBlastpEngine engine(index);

  std::printf("\n%-8s %10s %10s %10s %10s\n", "qlen", "mean%", "min%",
              "max%", "hits/query");
  for (const std::size_t qlen : {128u, 256u, 512u}) {
    Rng rng(seed + qlen);
    const SequenceStore queries = synth::sample_queries(db, batch, qlen, rng);
    std::vector<double> pct;
    std::uint64_t total_hits = 0;
    for (SeqId q = 0; q < queries.size(); ++q) {
      stats::PipelineStats ps;
      (void)engine.search(queries.sequence(q), ps);
      const stats::PipelineSnapshot snap = ps.snapshot();
      pct.push_back(100.0 * snap.survival_ratio());
      total_hits += snap.totals.hits;
    }
    const double mean =
        std::accumulate(pct.begin(), pct.end(), 0.0) / pct.size();
    const auto [lo, hi] = std::minmax_element(pct.begin(), pct.end());
    std::printf("%-8zu %9.2f%% %9.2f%% %9.2f%% %10.0f\n", qlen, mean, *lo,
                *hi, static_cast<double>(total_hits) / queries.size());
  }
  std::printf("\npaper: <5%% of hits remain after pre-filtering for all "
              "three query lengths\n");
  return 0;
}
