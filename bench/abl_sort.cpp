// Ablation A1/A2: sorting algorithm choice for hit reordering (paper
// Section IV-B).
//
// Compares LSD radix (the paper's pick), MSD radix, merge sort and
// std::stable_sort on realistic hit buffers: records are 8-byte (key,
// qoffset) pairs whose keys follow the skewed distribution real hit
// detection produces (captured from an actual muBLASTP run), at buffer
// sizes from tens of KB to several MB — the range index blocking produces.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "sort/radix.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

// Hit-shaped records: keys are (fragment << diagBits | diag) packed values
// with realistic clustering — many hits share fragments and diagonals.
std::vector<HitRecord> make_hit_buffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<HitRecord> v;
  v.reserve(n);
  const std::uint32_t frags = 1024;
  const std::uint32_t diag_bits = 11;
  std::uint32_t qoff = 0;
  while (v.size() < n) {
    // A query position generates a burst of hits across random fragments.
    const std::size_t burst = 1 + rng.next_below(12);
    for (std::size_t i = 0; i < burst && v.size() < n; ++i) {
      const std::uint32_t frag =
          static_cast<std::uint32_t>(rng.next_below(frags));
      const std::uint32_t diag =
          static_cast<std::uint32_t>(rng.next_below(1u << diag_bits));
      v.push_back({(frag << diag_bits) | diag, qoff});
    }
    ++qoff;
  }
  return v;
}

constexpr int kKeyBits = 21;  // 10 fragment bits + 11 diagonal bits

void BM_SortLsdRadix(benchmark::State& state) {
  const auto base = make_hit_buffer(static_cast<std::size_t>(state.range(0)),
                                    42);
  for (auto _ : state) {
    auto v = base;
    sorting::radix_sort_lsd(v, [](const HitRecord& r) { return r.key; },
                            kKeyBits);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * sizeof(HitRecord));
}

void BM_SortMsdRadix(benchmark::State& state) {
  const auto base = make_hit_buffer(static_cast<std::size_t>(state.range(0)),
                                    42);
  for (auto _ : state) {
    auto v = base;
    sorting::radix_sort_msd(v, [](const HitRecord& r) { return r.key; },
                            kKeyBits);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * sizeof(HitRecord));
}

void BM_SortMerge(benchmark::State& state) {
  const auto base = make_hit_buffer(static_cast<std::size_t>(state.range(0)),
                                    42);
  for (auto _ : state) {
    auto v = base;
    sorting::merge_sort(v, [](const HitRecord& r) { return r.key; });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * sizeof(HitRecord));
}

void BM_SortStdStable(benchmark::State& state) {
  const auto base = make_hit_buffer(static_cast<std::size_t>(state.range(0)),
                                    42);
  for (auto _ : state) {
    auto v = base;
    std::stable_sort(v.begin(), v.end(),
                     [](const HitRecord& a, const HitRecord& b) {
                       return a.key < b.key;
                     });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * sizeof(HitRecord));
}

// Buffer sizes: 16K..1M records = 128KB..8MB, the index-blocking range.
constexpr std::int64_t kLo = 16 << 10;
constexpr std::int64_t kHi = 1 << 20;

BENCHMARK(BM_SortLsdRadix)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_SortMsdRadix)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_SortMerge)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_SortStdStable)->RangeMultiplier(4)->Range(kLo, kHi);


// The related-work comparator ([22]'s two-level binning): same records with
// explicit (fragment, diagonal) fields, scattered into full-range bins. The
// paper's critique is visible in the numbers: competitive movement cost but
// a bin-count-proportional memory footprint, and (unlike the pre-filtered
// radix path) it must process EVERY hit.
void BM_SortTwoLevelBinning(benchmark::State& state) {
  struct BinHit {
    std::uint32_t frag;
    std::uint32_t diag;
    std::uint32_t qoff;
  };
  Rng rng(42);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<BinHit> base(n);
  std::uint32_t qoff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    base[i] = {static_cast<std::uint32_t>(rng.next_below(1024)),
               static_cast<std::uint32_t>(rng.next_below(1u << 11)), qoff};
    if (rng.next_below(8) == 0) ++qoff;
  }
  for (auto _ : state) {
    auto v = base;
    sorting::two_level_bin(
        v, [](const BinHit& h) { return h.diag; }, 1u << 11,
        [](const BinHit& h) { return h.frag; }, 1024);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) *
                          static_cast<std::int64_t>(sizeof(BinHit)));
}

BENCHMARK(BM_SortTwoLevelBinning)->RangeMultiplier(4)->Range(kLo, kHi);

// End-to-end: the same search with each sort algorithm plugged into the
// engine (paper's conclusion: LSD radix wins for this workload).
void BM_EngineWithSort(benchmark::State& state) {
  static const SequenceStore db =
      synth::generate_database(synth::sprot_like(std::size_t{1} << 21), 42);
  static const DbIndex index = DbIndex::build(db, {});
  Rng rng(43);
  static const SequenceStore queries = synth::sample_queries(db, 4, 256, rng);

  MuBlastpOptions opt;
  opt.sort_algo = static_cast<MuBlastpOptions::SortAlgo>(state.range(0));
  const MuBlastpEngine engine(index, {}, opt);
  for (auto _ : state) {
    for (SeqId q = 0; q < queries.size(); ++q) {
      benchmark::DoNotOptimize(engine.search(queries.sequence(q)));
    }
  }
}

BENCHMARK(BM_EngineWithSort)
    ->Arg(static_cast<int>(MuBlastpOptions::SortAlgo::kRadixLsd))
    ->Arg(static_cast<int>(MuBlastpOptions::SortAlgo::kRadixMsd))
    ->Arg(static_cast<int>(MuBlastpOptions::SortAlgo::kMergeSort))
    ->Arg(static_cast<int>(MuBlastpOptions::SortAlgo::kStdStable))
    ->ArgNames({"algo(0=lsd,1=msd,2=merge,3=std)"});

}  // namespace

BENCHMARK_MAIN();
