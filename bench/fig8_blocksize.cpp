// Figure 8: performance of NCBI-db and muBLASTP with different index block
// sizes (128KB .. 4MB) on uniprot_sprot — execution time and LLC miss rate.
//
// The paper's shape: both engines improve as the block grows toward ~512KB
// (better cache-line utilization of the position lists), then degrade as
// the per-thread last-hit arrays (~2x block size each) overflow the shared
// L3 with 12 threads; NCBI-db degrades much faster than muBLASTP. The
// optimum follows b = L3 / (2t + 1) (Section V-B).
//
// Two LLC columns are reported from the trace simulator:
//  * "1t"  — the plain single-thread hierarchy (Haswell 30MB L3);
//  * "12t" — the 12-thread sharing model: co-running threads' private
//    last-hit arrays occupy 2*b each, so the traced thread sees an
//    effective L3 of (30MB - 11 * 2b), clamped at 2MB. This is the
//    mechanism the paper identifies for the post-1MB cliff.
#include <algorithm>

#include "baseline/interleaved_engine.hpp"
#include "bench_common.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"

namespace {

using namespace mublastp;

memsim::MemoryHierarchy shared_l3_hierarchy(std::size_t block_bytes,
                                            int threads) {
  const std::size_t l3 = 30u << 20;
  const std::size_t others =
      2 * block_bytes * static_cast<std::size_t>(threads - 1);
  const std::size_t effective =
      std::max<std::size_t>(std::size_t{2} << 20, l3 > others ? l3 - others : 0);
  // Round to the associativity granularity.
  const std::size_t ways = 20;
  const std::size_t line = 64;
  const std::size_t set_bytes = ways * line;
  const std::size_t rounded = std::max(set_bytes, effective / set_bytes * set_bytes);
  return memsim::MemoryHierarchy(
      {32 * 1024, 64, 8}, {256 * 1024, 64, 8}, {rounded, 64, ways},
      {64 * 4096, 4096, 4}, {1024 * 4096, 4096, 8});
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170808);
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 22);
  const std::size_t batch = bench::arg_size(argc, argv, "batch", 8);
  bench::print_header(
      "Figure 8", "execution time and LLC miss rate vs index block size",
      seed);

  const SequenceStore db = bench::make_db(synth::sprot_like(residues), seed);
  std::printf("block-size formula b = L3/(2t+1): 12 threads on 30MB L3 -> "
              "%zu KB (paper: 512KB optimum)\n",
              DbIndex::optimal_block_bytes(30u << 20, 12) / 1024);

  std::printf("\n%-9s | %-28s | %-28s\n", "", "NCBI-db", "muBLASTP");
  std::printf("%-9s | %9s %8s %8s | %9s %8s %8s\n", "block", "time(s)",
              "LLC 1t", "LLC 12t", "time(s)", "LLC 1t", "LLC 12t");

  for (const std::size_t kb : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    DbIndexConfig cfg;
    cfg.block_bytes = kb * 1024;
    const DbIndex index = DbIndex::build(db, cfg);
    const InterleavedDbEngine ncbi_db(index);
    const MuBlastpEngine mu(index);

    // Queries: mixed lengths 128/256/512 as in the paper's panels.
    Rng rng(seed + kb);
    SequenceStore queries;
    for (const std::size_t qlen : {128u, 256u, 512u}) {
      const SequenceStore qs =
          synth::sample_queries(db, batch / 2 + 1, qlen, rng);
      for (SeqId i = 0; i < qs.size(); ++i) {
        queries.add(qs.sequence(i), qs.name(i));
      }
    }

    const auto time_batch = [&](const auto& engine) {
      Timer t;
      for (SeqId q = 0; q < queries.size(); ++q) {
        (void)engine.search(queries.sequence(q));
      }
      return t.seconds();
    };
    const double t_db = time_batch(ncbi_db);
    const double t_mu = time_batch(mu);

    const SeqId probe = static_cast<SeqId>(queries.size() / 2);  // len 256
    const auto llc = [&](const auto& engine, int threads) {
      memsim::MemoryHierarchy h = shared_l3_hierarchy(cfg.block_bytes, threads);
      engine.search_traced(queries.sequence(probe), h);
      return 100.0 * h.stats().llc_miss_rate();
    };
    std::printf("%6zuKB  | %9.3f %7.2f%% %7.2f%% | %9.3f %7.2f%% %7.2f%%\n",
                kb, t_db, llc(ncbi_db, 1), llc(ncbi_db, 12), t_mu,
                llc(mu, 1), llc(mu, 12));
  }
  std::printf("\npaper shape: time and LLC miss first fall with block size, "
              "then rise past ~512KB-1MB;\nNCBI-db degrades far more than "
              "muBLASTP at large blocks.\n");
  return 0;
}
