// Figure 10: execution time and relative speedup of multi-node muBLASTP vs
// mpiBLAST on env_nr, 1..128 nodes (16 cores each).
//
// The cluster designs run in the discrete-event simulator (no MPI/cluster
// in this container; DESIGN.md documents the substitution). The per-task
// cost model is CALIBRATED against a real measured muBLASTP run on this
// machine, then applied to env_nr-scale workloads:
//  * muBLASTP: 1 process x 16 threads per node, length-sorted round-robin
//    database partitions, one batch-level merge.
//  * mpiBLAST: 16 single-thread workers per node, contiguous database
//    fragments, a master that issues queries and merges results per query;
//    workers run the query-indexed scan (no database index), which the
//    fig9-style measurement shows is several times slower per core.
//
// Paper: 88-92% strong-scaling efficiency for muBLASTP vs 31-57% for
// mpiBLAST; 2.2x-8.9x speedup on 128 nodes.
#include <cmath>

#include "bench_common.hpp"
#include "baseline/query_engine.hpp"
#include "cluster/cluster.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20171010);
  const std::size_t calib_res =
      bench::arg_size(argc, argv, "calib_residues", std::size_t{1} << 21);
  bench::print_header("Figure 10", "multi-node muBLASTP vs mpiBLAST, env_nr",
                      seed);

  // --- Calibration: measure the real kernels on this machine. ----------
  const SequenceStore calib_db =
      bench::make_db(synth::envnr_like(calib_res), seed);
  DbIndexConfig cfg;
  cfg.block_bytes = 512 * 1024;
  const DbIndex calib_index = DbIndex::build(calib_db, cfg);
  const MuBlastpEngine mu_engine(calib_index);
  const QueryIndexedEngine ncbi_engine(calib_db);

  Rng rng(seed + 1);
  const SequenceStore calib_q = synth::sample_queries(calib_db, 4, 256, rng);
  Timer t;
  for (SeqId q = 0; q < calib_q.size(); ++q) {
    (void)mu_engine.search(calib_q.sequence(q));
  }
  const double mu_time = t.seconds() / static_cast<double>(calib_q.size());
  t.reset();
  for (SeqId q = 0; q < calib_q.size(); ++q) {
    (void)ncbi_engine.search(calib_q.sequence(q));
  }
  const double ncbi_time = t.seconds() / static_cast<double>(calib_q.size());

  cluster::CostModelParams cost;
  cost.sec_per_cell =
      mu_time / (256.0 * static_cast<double>(calib_db.total_residues()));
  const double slowdown = ncbi_time / mu_time;
  std::printf("[calibration] muBLASTP %.2e s per (query-char x db-char); "
              "query-indexed worker slowdown %.2fx\n",
              cost.sec_per_cell, slowdown);

  // --- Simulate at env_nr scale: ~6M sequences, 1.2G residues. ----------
  const std::size_t num_seqs = bench::arg_size(argc, argv, "seqs", 6000000);
  Rng len_rng(seed + 2);
  std::vector<std::size_t> lens(num_seqs);
  const double mu_len = std::log(177.0);
  const double sigma = std::sqrt(2.0 * std::log(197.0 / 177.0));
  for (auto& l : lens) {
    double v;
    do {
      v = std::exp(mu_len + sigma * len_rng.next_normal());
    } while (v < 40 || v > 5000);
    l = static_cast<std::size_t>(v);
  }
  std::vector<std::size_t> qlens(128, 0);
  for (auto& q : qlens) q = lens[len_rng.next_below(lens.size())];

  std::printf("\n%-6s %13s %13s %9s %8s %8s %9s %9s\n", "nodes",
              "muBLASTP(s)", "mpiBLAST(s)", "speedup", "eff(mu)", "eff(mpi)",
              "util(mu)", "util(mpi)");
  double mu_t1 = 0.0;
  double mpi_t1 = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto mu_parts =
        cluster::partition_chars_round_robin_sorted(lens, nodes);
    const auto mu_costs = cluster::cost_matrix(qlens, mu_parts, cost, seed);
    cluster::MuBlastpClusterConfig mu_cfg;
    mu_cfg.nodes = nodes;
    const cluster::SimReport mu_rep =
        cluster::simulate_mublastp_report(mu_costs, mu_cfg);

    const auto mpi_frags =
        cluster::partition_chars_contiguous(lens, nodes * 16);
    const auto mpi_costs = cluster::cost_matrix(qlens, mpi_frags, cost, seed);
    cluster::MpiBlastClusterConfig mpi_cfg;
    mpi_cfg.nodes = nodes;
    mpi_cfg.worker_slowdown = slowdown;
    const cluster::SimReport mpi_rep =
        cluster::simulate_mpiblast_report(mpi_costs, mpi_cfg);

    if (nodes == 1) {
      mu_t1 = mu_rep.total_sec;
      mpi_t1 = mpi_rep.total_sec;
    }
    std::printf(
        "%-6d %13.1f %13.1f %8.2fx %7.0f%% %7.0f%% %8.0f%% %8.0f%%\n", nodes,
        mu_rep.total_sec, mpi_rep.total_sec,
        mpi_rep.total_sec / mu_rep.total_sec,
        100.0 * cluster::scaling_efficiency(mu_t1, mu_rep.total_sec, nodes),
        100.0 * cluster::scaling_efficiency(mpi_t1, mpi_rep.total_sec, nodes),
        100.0 * mu_rep.utilization(), 100.0 * mpi_rep.utilization());
  }
  std::printf("\npaper: muBLASTP 88-92%% efficiency vs mpiBLAST 31-57%%; "
              "2.2x-8.9x speedup over mpiBLAST at 128 nodes.\n");
  return 0;
}
