// Ablation A4: decoupling the pipeline stages (paper Section IV-A).
//
// The interleaved engine (NCBI-db) triggers each ungapped extension the
// moment its hit pair is detected, jumping between subjects; decoupled
// muBLASTP detects all hits first, reorders them, then extends in subject
// order. Both run on the SAME index and produce identical results, so the
// time difference isolates the value of decoupling + reordering.
#include <benchmark/benchmark.h>

#include "baseline/interleaved_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

struct Fixture {
  SequenceStore db;
  DbIndex index;
  SequenceStore queries;

  Fixture()
      : db(synth::generate_database(synth::envnr_like(std::size_t{1} << 22),
                                    99)),
        index(DbIndex::build(db, {})) {
    Rng rng(100);
    queries = synth::sample_queries(db, 4, 256, rng);
  }

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

void BM_Interleaved(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const InterleavedDbEngine engine(f.index);
  for (auto _ : state) {
    for (SeqId q = 0; q < f.queries.size(); ++q) {
      benchmark::DoNotOptimize(engine.search(f.queries.sequence(q)));
    }
  }
}

void BM_DecoupledReordered(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const MuBlastpEngine engine(f.index);
  for (auto _ : state) {
    for (SeqId q = 0; q < f.queries.size(); ++q) {
      benchmark::DoNotOptimize(engine.search(f.queries.sequence(q)));
    }
  }
}

BENCHMARK(BM_Interleaved)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecoupledReordered)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
