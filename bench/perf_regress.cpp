// perf_regress: the SIMD-kernel perf-regression harness.
//
// Runs the same synthetic workload through the muBLASTP pipeline once per
// kernel configuration the CPU supports (scalar always; SSE4.2/AVX2 when
// available, each with and without the opt-in "+ungapped" vector kernel)
// and reports per-stage timings, throughput, and each configuration's
// speedup over scalar — the banded gapped DP and (since the flattened
// hit-scan kernels) stage-1 hit detection are the stages the SIMD paths
// target. Counters are asserted identical across kernels (exit 1 on any
// mismatch), so a run doubles as an equivalence check on a perf-sized
// workload.
//
//   perf_regress [--residues=N] [--queries=K] [--qlen=L] [--seed=S]
//                [--threads=T] [--reps=R] [--json=out.json]
//
// Timings are the minimum over --reps repetitions (per kernel), the usual
// noise floor for regression tracking. --json writes the machine-readable
// "mublastp-bench-v1" document tools/bench_to_json.py wraps.
//
// A second section times the striped Smith-Waterman kernel against the
// scalar DP on query-vs-sampled-subject pairs — the alignment kernel is
// where int16-lane SIMD pays off regardless of extension length.
//
// A third section covers the incremental-build path: DbIndex::build
// throughput at 1 thread vs all threads (the OpenMP block construction),
// and the search overhead of a 2-member base+delta generation chain on
// disk versus one canonical index over the same sequences — the price of
// skipping --compact. Alignment counts are asserted identical between the
// two, so this section too doubles as an equivalence check.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "baseline/smith_waterman.hpp"
#include "bench_common.hpp"
#include "cluster/gen_chain.hpp"
#include "common/faultinject.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "index/db_index_io.hpp"
#include "index/generation.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct KernelRun {
  simd::KernelPath path;
  bool vector_ungapped;          ///< "+ungapped" variant
  std::string name;              ///< "scalar", "avx2", "avx2+ungapped", ...
  stats::PipelineSnapshot best;  ///< rep with the fastest total
};

double stage_sec(const stats::PipelineSnapshot& s, stats::Stage st) {
  return s.stage_seconds[static_cast<int>(st)];
}

void append_json_run(std::string& out, const KernelRun& r) {
  // Floats go through jsonw so the emitted bytes are identical under any
  // LC_NUMERIC (printf %f localizes the decimal separator).
  char buf[256];
  out += "    {\"kernel\": \"";
  out += r.name;
  out += "\", \"stage_seconds\": {";
  for (int s = 0; s < stats::kNumStages; ++s) {
    if (s != 0) out += ", ";
    out += '"';
    out += stats::stage_name(static_cast<stats::Stage>(s));
    out += "\": ";
    jsonw::append_fixed(out, r.best.stage_seconds[s], 6);
  }
  const double total = r.best.total_seconds;
  const auto& c = r.best.totals;
  out += "}, \"total_seconds\": ";
  jsonw::append_fixed(out, total, 6);
  out += ", \"hits_per_sec\": ";
  jsonw::append_fixed(out, total > 0 ? static_cast<double>(c.hits) / total
                                     : 0.0, 0);
  out += ", \"extensions_per_sec\": ";
  jsonw::append_fixed(out,
                      total > 0 ? static_cast<double>(c.extensions) / total
                                : 0.0, 0);
  out += ',';
  std::snprintf(buf, sizeof(buf),
                " \"counters\": {\"hits\": %llu, \"hit_pairs\": %llu,"
                " \"extensions\": %llu, \"ungapped_alignments\": %llu,"
                " \"gapped_extensions\": %llu},",
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.hit_pairs),
                static_cast<unsigned long long>(c.extensions),
                static_cast<unsigned long long>(c.ungapped_alignments),
                static_cast<unsigned long long>(c.gapped_extensions));
  out += buf;
  const stats::GappedKernelStats& gk = r.best.gapped_kernel;
  std::snprintf(buf, sizeof(buf),
                " \"gapped_kernel\": {\"int8_runs\": %llu,"
                " \"int16_reruns\": %llu, \"scalar_fallbacks\": %llu}",
                static_cast<unsigned long long>(gk.int8_runs),
                static_cast<unsigned long long>(gk.int16_reruns),
                static_cast<unsigned long long>(gk.scalar_fallbacks));
  out += buf;
  const stats::HitKernelStats& hk = r.best.hit_kernel;
  std::snprintf(buf, sizeof(buf),
                ", \"hit_kernel\": {\"flatten_builds\": %llu,"
                " \"flatten_seconds\": ",
                static_cast<unsigned long long>(hk.flatten_builds));
  out += buf;
  jsonw::append_fixed(out, hk.flatten_seconds, 6);
  std::snprintf(buf, sizeof(buf),
                ", \"tiles\": %llu, \"tail_entries\": %llu}}",
                static_cast<unsigned long long>(hk.tiles),
                static_cast<unsigned long long>(hk.tail_entries));
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  // Armed fault injection would turn the recovery paths' overhead into
  // phantom perf regressions (and can abort a stage mid-timing): refuse.
  if (fi::any_armed()) {
    std::fprintf(stderr,
                 "perf_regress: fault injection is armed (MUBLASTP_FAULTS); "
                 "refusing to benchmark a degraded pipeline\n");
    return 2;
  }
  const std::size_t residues = bench::arg_size(argc, argv, "residues", 1u << 22);
  const std::size_t nq = bench::arg_size(argc, argv, "queries", 8);
  const std::size_t qlen = bench::arg_size(argc, argv, "qlen", 256);
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 515);
  const int threads =
      static_cast<int>(bench::arg_size(argc, argv, "threads", 1));
  const std::size_t reps = bench::arg_size(argc, argv, "reps", 3);
  const std::string json_path = arg_str(argc, argv, "json", "");

  bench::print_header("perf_regress", "SIMD kernel perf regression", seed);
  const SequenceStore db = bench::make_db(synth::sprot_like(residues), seed);
  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, nq, qlen, rng);
  Timer t;
  const DbIndex index = DbIndex::build(db, {});
  std::printf("[setup] index: %zu blocks (%.2fs)\n", index.blocks().size(),
              t.seconds());
  std::printf("[setup] %zu queries x %zu residues, %d thread(s), %zu reps\n",
              queries.size(), qlen, threads, reps);
  std::printf("[setup] auto-dispatch kernel: %s\n",
              simd::kernel_name(simd::detect_kernel()));

  std::vector<simd::KernelPath> paths = {simd::KernelPath::kScalar};
  if (simd::kernel_supported(simd::KernelPath::kSse42)) {
    paths.push_back(simd::KernelPath::kSse42);
  }
  if (simd::kernel_supported(simd::KernelPath::kAvx2)) {
    paths.push_back(simd::KernelPath::kAvx2);
  }

  // One configuration per supported path, plus the opt-in "+ungapped"
  // variant for the vector paths (measured so its regression stays
  // visible even though production runs default it off).
  struct Config {
    simd::KernelPath path;
    bool vector_ungapped;
  };
  std::vector<Config> configs;
  for (const simd::KernelPath path : paths) configs.push_back({path, false});
  for (const simd::KernelPath path : paths) {
    if (path != simd::KernelPath::kScalar) configs.push_back({path, true});
  }

  std::vector<KernelRun> runs;
  for (const Config& cfg : configs) {
    MuBlastpOptions options;
    options.kernel = cfg.path;
    options.vector_ungapped = cfg.vector_ungapped;
    const MuBlastpEngine engine(index, {}, options);
    std::optional<stats::PipelineSnapshot> best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stats::PipelineStats ps;
      (void)engine.search_batch(queries, threads, &ps);
      stats::PipelineSnapshot snap = ps.snapshot();
      if (!best || snap.total_seconds < best->total_seconds) {
        best = std::move(snap);
      }
    }
    std::string name = simd::kernel_name(cfg.path);
    if (cfg.vector_ungapped) name += "+ungapped";
    runs.push_back({cfg.path, cfg.vector_ungapped, name, std::move(*best)});
    std::printf("[run] %-14s ungapped %.4fs gapped %.4fs total %.4fs\n",
                runs.back().name.c_str(),
                stage_sec(runs.back().best, stats::Stage::kUngapped),
                stage_sec(runs.back().best, stats::Stage::kGapped),
                runs.back().best.total_seconds);
  }

  // Equivalence gate: every kernel's counters must equal scalar's.
  bool counters_ok = true;
  for (const KernelRun& r : runs) {
    if (r.best.totals != runs.front().best.totals) {
      std::printf("COUNTER MISMATCH: %s differs from scalar\n",
                  r.name.c_str());
      counters_ok = false;
    }
  }
  // The banded-kernel tier tallies are value-driven, so every vector
  // configuration must book identical tallies (and scalar none at all).
  for (const KernelRun& r : runs) {
    const bool vector = r.path != simd::KernelPath::kScalar;
    if (!vector && r.best.gapped_kernel.any()) {
      std::printf("TIER MISMATCH: scalar run booked gapped-kernel tiers\n");
      counters_ok = false;
    }
    if (vector && r.best.gapped_kernel != runs.back().best.gapped_kernel) {
      std::printf("TIER MISMATCH: %s tallies differ across vector paths\n",
                  r.name.c_str());
      counters_ok = false;
    }
  }

  std::printf("\n%-14s %10s %10s %10s %10s %10s %10s %9s %9s %9s\n",
              "kernel", "detect", "sort", "ungapped", "gapped", "finalize",
              "total", "x detect", "x gapped", "x total");
  const double base_detect =
      stage_sec(runs.front().best, stats::Stage::kHitDetect);
  const double base_ungap =
      stage_sec(runs.front().best, stats::Stage::kUngapped);
  const double base_gapped =
      stage_sec(runs.front().best, stats::Stage::kGapped);
  const double base_total = runs.front().best.total_seconds;
  for (const KernelRun& r : runs) {
    const double detect = stage_sec(r.best, stats::Stage::kHitDetect);
    const double gapped = stage_sec(r.best, stats::Stage::kGapped);
    const double total = r.best.total_seconds;
    std::printf(
        "%-14s %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %8.2fx %8.2fx"
        " %8.2fx\n",
        r.name.c_str(), detect,
        stage_sec(r.best, stats::Stage::kSort),
        stage_sec(r.best, stats::Stage::kUngapped), gapped,
        stage_sec(r.best, stats::Stage::kFinalize), total,
        detect > 0 ? base_detect / detect : 0.0,
        gapped > 0 ? base_gapped / gapped : 0.0,
        total > 0 ? base_total / total : 0.0);
  }
  std::printf("counters: %s\n",
              counters_ok ? "identical across kernels" : "MISMATCH");

  // ---- Striped Smith-Waterman: the alignment-kernel side of dispatch. ---
  std::vector<std::span<const Residue>> sw_subjects;
  const SeqId sw_stride = static_cast<SeqId>(db.size() / 32 + 1);
  for (SeqId sid = 0; sid < db.size() && sw_subjects.size() < 32;
       sid += sw_stride) {
    sw_subjects.push_back(db.sequence(sid));
  }
  const SearchParams sw_params;
  struct SwRun {
    simd::KernelPath path;
    double secs;
    long long checksum;
  };
  std::vector<SwRun> sw_runs;
  for (const simd::KernelPath path : paths) {
    double best_sec = 1e100;
    long long checksum = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      checksum = 0;
      Timer st;
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        for (const std::span<const Residue> subj : sw_subjects) {
          checksum += smith_waterman_score(queries.sequence(qi), subj,
                                           blosum62(), sw_params.gap_open,
                                           sw_params.gap_extend, path);
        }
      }
      best_sec = std::min(best_sec, st.seconds());
    }
    sw_runs.push_back({path, best_sec, checksum});
  }
  bool sw_ok = true;
  for (const SwRun& r : sw_runs) {
    if (r.checksum != sw_runs.front().checksum) sw_ok = false;
  }
  std::printf("\nsmith-waterman (%zu query x %zu subject pairs):\n",
              queries.size(), sw_subjects.size());
  for (const SwRun& r : sw_runs) {
    std::printf("%-8s %9.4fs %8.2fx\n", simd::kernel_name(r.path), r.secs,
                r.secs > 0 ? sw_runs.front().secs / r.secs : 0.0);
  }
  std::printf("sw scores: %s\n",
              sw_ok ? "identical across kernels" : "MISMATCH");
  counters_ok = counters_ok && sw_ok;

  // ---- Incremental builds: parallel index construction + chain price. ---
  double build_sec_1 = 1e100;
  double build_sec_n = 1e100;
  int build_threads_n = 1;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    DbIndexConfig cfg1;
    cfg1.build_threads = 1;
    BuildTelemetry tele1;
    (void)DbIndex::build(db, cfg1, &tele1);
    build_sec_1 = std::min(build_sec_1, tele1.total_seconds);
    DbIndexConfig cfgn;
    cfgn.build_threads = 0;  // all available
    BuildTelemetry telen;
    (void)DbIndex::build(db, cfgn, &telen);
    build_sec_n = std::min(build_sec_n, telen.total_seconds);
    build_threads_n = telen.threads;
  }
  std::printf("\nindex build (%zu residues):\n", residues);
  std::printf("%-10s %9.4fs %12.0f residues/s\n", "1 thread", build_sec_1,
              build_sec_1 > 0 ? static_cast<double>(residues) / build_sec_1
                              : 0.0);
  std::printf("%-10s %9.4fs %12.0f residues/s %8.2fx\n",
              (std::to_string(build_threads_n) + " threads").c_str(),
              build_sec_n,
              build_sec_n > 0 ? static_cast<double>(residues) / build_sec_n
                              : 0.0,
              build_sec_n > 0 ? build_sec_1 / build_sec_n : 0.0);

  // The chain price: base (first 2/3) + appended delta (last 1/3) searched
  // through the on-disk generation protocol vs one canonical index. Same
  // sequences in the same global order, so the merged output must agree.
  const std::filesystem::path chain_base =
      std::filesystem::temp_directory_path() /
      ("mublastp_perf_chain_" + std::to_string(::getpid()) + ".mbi");
  SequenceStore db_base;
  SequenceStore db_delta;
  const SeqId split = static_cast<SeqId>(db.size() * 2 / 3);
  for (SeqId sid = 0; sid < db.size(); ++sid) {
    (sid < split ? db_base : db_delta).add(db.sequence(sid), db.name(sid));
  }
  save_db_index_file_durable(chain_base.string(), DbIndex::build(db_base, {}));
  const AppendResult appended =
      append_generation(chain_base.string(), db_delta);
  const cluster::GenerationChain chain = cluster::GenerationChain::load(
      chain_base.string(), {SearchParams{}, MuBlastpOptions{}, true}, nullptr);
  std::filesystem::remove(chain_base);
  std::filesystem::remove(appended.delta_path);
  std::filesystem::remove(appended.manifest_path);

  const MuBlastpEngine full_engine(index, {}, {});
  double full_sec = 1e100;
  double chain_sec = 1e100;
  std::uint64_t full_alignments = 0;
  std::uint64_t chain_alignments = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Timer ft;
    const std::vector<QueryResult> full =
        full_engine.search_batch(queries, threads);
    full_sec = std::min(full_sec, ft.seconds());
    Timer ct;
    const cluster::ChainSearchResult chained =
        cluster::search_chain(chain, queries, threads);
    chain_sec = std::min(chain_sec, ct.seconds());
    full_alignments = chain_alignments = 0;
    for (const QueryResult& r : full) full_alignments += r.alignments.size();
    for (const QueryResult& r : chained.results) {
      chain_alignments += r.alignments.size();
    }
  }
  const bool chain_ok = full_alignments == chain_alignments;
  std::printf("\ndelta-search overhead (%u-member chain vs canonical):\n",
              chain.member_count());
  std::printf("%-10s %9.4fs\n", "canonical", full_sec);
  std::printf("%-10s %9.4fs %8.2fx\n", "chain", chain_sec,
              full_sec > 0 ? chain_sec / full_sec : 0.0);
  std::printf("alignments: %s\n",
              chain_ok ? "identical" : "MISMATCH");
  counters_ok = counters_ok && chain_ok;

  if (!json_path.empty()) {
    std::string out;
    out += "{\n  \"schema\": \"mublastp-bench-v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"workload\": {\"residues\": %zu, \"queries\": %zu,"
                  " \"qlen\": %zu, \"seed\": %llu, \"threads\": %d,"
                  " \"reps\": %zu},\n",
                  residues, queries.size(), qlen,
                  static_cast<unsigned long long>(seed), threads, reps);
    out += buf;
    out += "  \"auto_kernel\": \"";
    out += simd::kernel_name(simd::detect_kernel());
    out += "\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      append_json_run(out, runs[i]);
      out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"speedup_vs_scalar\": {";
    bool first = true;
    for (const KernelRun& r : runs) {
      if (r.path == simd::KernelPath::kScalar) continue;
      const double detect = stage_sec(r.best, stats::Stage::kHitDetect);
      const double ungap = stage_sec(r.best, stats::Stage::kUngapped);
      const double gapped = stage_sec(r.best, stats::Stage::kGapped);
      if (!first) out += ", ";
      out += '"';
      out += r.name;
      out += "\": {\"hit_detect\": ";
      jsonw::append_fixed(out, detect > 0 ? base_detect / detect : 0.0, 3);
      out += ", \"ungapped\": ";
      jsonw::append_fixed(out, ungap > 0 ? base_ungap / ungap : 0.0, 3);
      out += ", \"gapped\": ";
      jsonw::append_fixed(out, gapped > 0 ? base_gapped / gapped : 0.0, 3);
      out += ", \"total\": ";
      jsonw::append_fixed(out,
                          r.best.total_seconds > 0
                              ? base_total / r.best.total_seconds
                              : 0.0, 3);
      out += '}';
      first = false;
    }
    out += "},\n  \"smith_waterman\": {";
    std::snprintf(buf, sizeof(buf), "\"pairs\": %zu, \"runs\": [",
                  queries.size() * sw_subjects.size());
    out += buf;
    for (std::size_t i = 0; i < sw_runs.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"kernel\": \"";
      out += simd::kernel_name(sw_runs[i].path);
      out += "\", \"seconds\": ";
      jsonw::append_fixed(out, sw_runs[i].secs, 6);
      out += ", \"speedup\": ";
      jsonw::append_fixed(out,
                          sw_runs[i].secs > 0
                              ? sw_runs.front().secs / sw_runs[i].secs
                              : 0.0, 3);
      out += '}';
    }
    std::snprintf(buf, sizeof(buf), "], \"scores_identical\": %s},\n",
                  sw_ok ? "true" : "false");
    out += buf;
    out += "  \"incremental_build\": {\"index_build\": {";
    std::snprintf(buf, sizeof(buf), "\"residues\": %zu, ", residues);
    out += buf;
    out += "\"serial_seconds\": ";
    jsonw::append_fixed(out, build_sec_1, 6);
    std::snprintf(buf, sizeof(buf), ", \"parallel_threads\": %d,"
                  " \"parallel_seconds\": ", build_threads_n);
    out += buf;
    jsonw::append_fixed(out, build_sec_n, 6);
    out += ", \"residues_per_sec\": ";
    jsonw::append_fixed(out,
                        build_sec_n > 0
                            ? static_cast<double>(residues) / build_sec_n
                            : 0.0, 0);
    out += ", \"parallel_speedup\": ";
    jsonw::append_fixed(out, build_sec_n > 0 ? build_sec_1 / build_sec_n
                                             : 0.0, 3);
    std::snprintf(buf, sizeof(buf),
                  "}, \"chain_search\": {\"members\": %u, ",
                  chain.member_count());
    out += buf;
    out += "\"canonical_seconds\": ";
    jsonw::append_fixed(out, full_sec, 6);
    out += ", \"chain_seconds\": ";
    jsonw::append_fixed(out, chain_sec, 6);
    out += ", \"overhead_ratio\": ";
    jsonw::append_fixed(out, full_sec > 0 ? chain_sec / full_sec : 0.0, 3);
    std::snprintf(buf, sizeof(buf), ", \"alignments_identical\": %s}},\n",
                  chain_ok ? "true" : "false");
    out += buf;
    out += "  \"analysis\": \"docs/ALGORITHMS.md section 'SIMD kernels and"
           " dispatch' discusses these numbers: the banded tiered int8/int16"
           " gapped DP is the production vector path; the batched vector"
           " ungapped kernel is the opt-in '+ungapped' variant (slower than"
           " scalar); striped SW is where the int16 lanes pay\",\n";
    std::snprintf(buf, sizeof(buf), "  \"counters_identical\": %s\n}\n",
                  counters_ok ? "true" : "false");
    out += buf;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return counters_ok ? 0 : 1;
}
