// perf_regress: the SIMD-kernel perf-regression harness.
//
// Runs the same synthetic workload through the muBLASTP pipeline once per
// kernel path the CPU supports (scalar always; SSE4.2/AVX2 when available)
// and reports per-stage timings, throughput, and each kernel's speedup over
// scalar — the ungapped-extension stage is the one the SIMD kernels target.
// Counters are asserted identical across kernels (exit 1 on any mismatch),
// so a run doubles as an equivalence check on a perf-sized workload.
//
//   perf_regress [--residues=N] [--queries=K] [--qlen=L] [--seed=S]
//                [--threads=T] [--reps=R] [--json=out.json]
//
// Timings are the minimum over --reps repetitions (per kernel), the usual
// noise floor for regression tracking. --json writes the machine-readable
// "mublastp-bench-v1" document tools/bench_to_json.py wraps.
//
// A second section times the striped Smith-Waterman kernel against the
// scalar DP on query-vs-sampled-subject pairs — the alignment kernel is
// where int16-lane SIMD pays off regardless of extension length.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline/smith_waterman.hpp"
#include "bench_common.hpp"
#include "common/faultinject.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"

namespace {

using namespace mublastp;

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct KernelRun {
  simd::KernelPath path;
  stats::PipelineSnapshot best;  ///< rep with the fastest ungapped stage
};

double stage_sec(const stats::PipelineSnapshot& s, stats::Stage st) {
  return s.stage_seconds[static_cast<int>(st)];
}

void append_json_run(std::string& out, const KernelRun& r) {
  char buf[256];
  out += "    {\"kernel\": \"";
  out += simd::kernel_name(r.path);
  out += "\", \"stage_seconds\": {";
  for (int s = 0; s < stats::kNumStages; ++s) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6f", s == 0 ? "" : ", ",
                  stats::stage_name(static_cast<stats::Stage>(s)),
                  r.best.stage_seconds[s]);
    out += buf;
  }
  const double total = r.best.total_seconds;
  const auto& c = r.best.totals;
  std::snprintf(buf, sizeof(buf),
                "}, \"total_seconds\": %.6f, \"hits_per_sec\": %.0f,"
                " \"extensions_per_sec\": %.0f,",
                total, total > 0 ? static_cast<double>(c.hits) / total : 0.0,
                total > 0 ? static_cast<double>(c.extensions) / total : 0.0);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                " \"counters\": {\"hits\": %llu, \"hit_pairs\": %llu,"
                " \"extensions\": %llu, \"ungapped_alignments\": %llu,"
                " \"gapped_extensions\": %llu}}",
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.hit_pairs),
                static_cast<unsigned long long>(c.extensions),
                static_cast<unsigned long long>(c.ungapped_alignments),
                static_cast<unsigned long long>(c.gapped_extensions));
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  // Armed fault injection would turn the recovery paths' overhead into
  // phantom perf regressions (and can abort a stage mid-timing): refuse.
  if (fi::any_armed()) {
    std::fprintf(stderr,
                 "perf_regress: fault injection is armed (MUBLASTP_FAULTS); "
                 "refusing to benchmark a degraded pipeline\n");
    return 2;
  }
  const std::size_t residues = bench::arg_size(argc, argv, "residues", 1u << 22);
  const std::size_t nq = bench::arg_size(argc, argv, "queries", 8);
  const std::size_t qlen = bench::arg_size(argc, argv, "qlen", 256);
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 515);
  const int threads =
      static_cast<int>(bench::arg_size(argc, argv, "threads", 1));
  const std::size_t reps = bench::arg_size(argc, argv, "reps", 3);
  const std::string json_path = arg_str(argc, argv, "json", "");

  bench::print_header("perf_regress", "SIMD kernel perf regression", seed);
  const SequenceStore db = bench::make_db(synth::sprot_like(residues), seed);
  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, nq, qlen, rng);
  Timer t;
  const DbIndex index = DbIndex::build(db, {});
  std::printf("[setup] index: %zu blocks (%.2fs)\n", index.blocks().size(),
              t.seconds());
  std::printf("[setup] %zu queries x %zu residues, %d thread(s), %zu reps\n",
              queries.size(), qlen, threads, reps);
  std::printf("[setup] auto-dispatch kernel: %s\n",
              simd::kernel_name(simd::detect_kernel()));

  std::vector<simd::KernelPath> paths = {simd::KernelPath::kScalar};
  if (simd::kernel_supported(simd::KernelPath::kSse42)) {
    paths.push_back(simd::KernelPath::kSse42);
  }
  if (simd::kernel_supported(simd::KernelPath::kAvx2)) {
    paths.push_back(simd::KernelPath::kAvx2);
  }

  std::vector<KernelRun> runs;
  for (const simd::KernelPath path : paths) {
    MuBlastpOptions options;
    options.kernel = path;
    const MuBlastpEngine engine(index, {}, options);
    std::optional<stats::PipelineSnapshot> best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stats::PipelineStats ps;
      (void)engine.search_batch(queries, threads, &ps);
      stats::PipelineSnapshot snap = ps.snapshot();
      if (!best || stage_sec(snap, stats::Stage::kUngapped) <
                       stage_sec(*best, stats::Stage::kUngapped)) {
        best = std::move(snap);
      }
    }
    runs.push_back({path, std::move(*best)});
    std::printf("[run] %-6s ungapped %.4fs total %.4fs\n",
                simd::kernel_name(path),
                stage_sec(runs.back().best, stats::Stage::kUngapped),
                runs.back().best.total_seconds);
  }

  // Equivalence gate: every kernel's counters must equal scalar's.
  bool counters_ok = true;
  for (const KernelRun& r : runs) {
    if (r.best.totals != runs.front().best.totals) {
      std::printf("COUNTER MISMATCH: %s differs from scalar\n",
                  simd::kernel_name(r.path));
      counters_ok = false;
    }
  }

  std::printf("\n%-8s %10s %10s %10s %10s %10s %10s %12s %9s %9s\n", "kernel",
              "detect", "sort", "ungapped", "gapped", "finalize", "total",
              "hits/s", "x ungap", "x total");
  const double base_ungap =
      stage_sec(runs.front().best, stats::Stage::kUngapped);
  const double base_total = runs.front().best.total_seconds;
  for (const KernelRun& r : runs) {
    const double ungap = stage_sec(r.best, stats::Stage::kUngapped);
    const double total = r.best.total_seconds;
    std::printf(
        "%-8s %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %12.0f %8.2fx"
        " %8.2fx\n",
        simd::kernel_name(r.path),
        stage_sec(r.best, stats::Stage::kHitDetect),
        stage_sec(r.best, stats::Stage::kSort), ungap,
        stage_sec(r.best, stats::Stage::kGapped),
        stage_sec(r.best, stats::Stage::kFinalize), total,
        total > 0 ? static_cast<double>(r.best.totals.hits) / total : 0.0,
        ungap > 0 ? base_ungap / ungap : 0.0,
        total > 0 ? base_total / total : 0.0);
  }
  std::printf("counters: %s\n",
              counters_ok ? "identical across kernels" : "MISMATCH");

  // ---- Striped Smith-Waterman: the alignment-kernel side of dispatch. ---
  std::vector<std::span<const Residue>> sw_subjects;
  const SeqId sw_stride = static_cast<SeqId>(db.size() / 32 + 1);
  for (SeqId sid = 0; sid < db.size() && sw_subjects.size() < 32;
       sid += sw_stride) {
    sw_subjects.push_back(db.sequence(sid));
  }
  const SearchParams sw_params;
  struct SwRun {
    simd::KernelPath path;
    double secs;
    long long checksum;
  };
  std::vector<SwRun> sw_runs;
  for (const simd::KernelPath path : paths) {
    double best_sec = 1e100;
    long long checksum = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      checksum = 0;
      Timer st;
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        for (const std::span<const Residue> subj : sw_subjects) {
          checksum += smith_waterman_score(queries.sequence(qi), subj,
                                           blosum62(), sw_params.gap_open,
                                           sw_params.gap_extend, path);
        }
      }
      best_sec = std::min(best_sec, st.seconds());
    }
    sw_runs.push_back({path, best_sec, checksum});
  }
  bool sw_ok = true;
  for (const SwRun& r : sw_runs) {
    if (r.checksum != sw_runs.front().checksum) sw_ok = false;
  }
  std::printf("\nsmith-waterman (%zu query x %zu subject pairs):\n",
              queries.size(), sw_subjects.size());
  for (const SwRun& r : sw_runs) {
    std::printf("%-8s %9.4fs %8.2fx\n", simd::kernel_name(r.path), r.secs,
                r.secs > 0 ? sw_runs.front().secs / r.secs : 0.0);
  }
  std::printf("sw scores: %s\n",
              sw_ok ? "identical across kernels" : "MISMATCH");
  counters_ok = counters_ok && sw_ok;

  if (!json_path.empty()) {
    std::string out;
    out += "{\n  \"schema\": \"mublastp-bench-v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"workload\": {\"residues\": %zu, \"queries\": %zu,"
                  " \"qlen\": %zu, \"seed\": %llu, \"threads\": %d,"
                  " \"reps\": %zu},\n",
                  residues, queries.size(), qlen,
                  static_cast<unsigned long long>(seed), threads, reps);
    out += buf;
    out += "  \"auto_kernel\": \"";
    out += simd::kernel_name(simd::detect_kernel());
    out += "\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      append_json_run(out, runs[i]);
      out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"speedup_vs_scalar\": {";
    bool first = true;
    for (const KernelRun& r : runs) {
      if (r.path == simd::KernelPath::kScalar) continue;
      const double ungap = stage_sec(r.best, stats::Stage::kUngapped);
      std::snprintf(buf, sizeof(buf),
                    "%s\"%s\": {\"ungapped\": %.3f, \"total\": %.3f}",
                    first ? "" : ", ", simd::kernel_name(r.path),
                    ungap > 0 ? base_ungap / ungap : 0.0,
                    r.best.total_seconds > 0
                        ? base_total / r.best.total_seconds
                        : 0.0);
      out += buf;
      first = false;
    }
    out += "},\n  \"smith_waterman\": {";
    std::snprintf(buf, sizeof(buf), "\"pairs\": %zu, \"runs\": [",
                  queries.size() * sw_subjects.size());
    out += buf;
    for (std::size_t i = 0; i < sw_runs.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s{\"kernel\": \"%s\", \"seconds\": %.6f"
                    ", \"speedup\": %.3f}", i == 0 ? "" : ", ",
                    simd::kernel_name(sw_runs[i].path), sw_runs[i].secs,
                    sw_runs[i].secs > 0
                        ? sw_runs.front().secs / sw_runs[i].secs
                        : 0.0);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "], \"scores_identical\": %s},\n",
                  sw_ok ? "true" : "false");
    out += buf;
    out += "  \"analysis\": \"docs/ALGORITHMS.md section 'SIMD kernels and"
           " dispatch' discusses these numbers: x-drop early exit bounds the"
           " data-parallelism of ungapped extension; striped SW is where the"
           " int16 lanes pay\",\n";
    std::snprintf(buf, sizeof(buf), "  \"counters_identical\": %s\n}\n",
                  counters_ok ? "true" : "false");
    out += buf;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return counters_ok ? 0 : 1;
}
