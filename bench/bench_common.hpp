// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the seed and workload parameters it ran with and
// (b) a table whose rows mirror the corresponding figure in the paper, so
// EXPERIMENTS.md can record paper-vs-measured side by side.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sequence.hpp"
#include "common/timer.hpp"
#include "synth/synth.hpp"

namespace mublastp::bench {

/// Parses "--key=value" style overrides: returns value or fallback.
inline std::size_t arg_size(int argc, char** argv, const std::string& key,
                            std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return std::strtoull(a.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline void print_header(const char* figure, const char* what,
                         std::uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("seed %llu (rerun with the same seed for identical numbers)\n",
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

/// Builds and caches one synthetic database per (spec name, residues, seed).
inline SequenceStore make_db(const synth::DatabaseSpec& spec,
                             std::uint64_t seed) {
  Timer t;
  SequenceStore db = synth::generate_database(spec, seed);
  std::printf("[setup] %s: %zu sequences, %zu residues (%.2fs)\n",
              spec.name.c_str(), db.size(), db.total_residues(), t.seconds());
  return db;
}

}  // namespace mublastp::bench
