// Figure 7: sequence-length distributions of the uniprot_sprot and env_nr
// databases.
//
// Prints the length histograms of the two synthetic stand-ins with the
// statistics the paper quotes: sprot median 292 / mean 355, env_nr median
// 177 / mean 197, with "most sequences in the range 60..1000 bases and only
// few longer than 1000".
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170707);
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 23);
  bench::print_header("Figure 7", "sequence length distributions", seed);

  const std::vector<std::size_t> edges{60,  125, 250, 375, 500,  625,
                                       750, 875, 1000, 1500, 2000};

  for (const bool env : {false, true}) {
    const synth::DatabaseSpec spec =
        env ? synth::envnr_like(residues) : synth::sprot_like(residues);
    const SequenceStore db = bench::make_db(spec, seed);

    std::vector<std::size_t> lens;
    for (SeqId i = 0; i < db.size(); ++i) lens.push_back(db.length(i));
    std::sort(lens.begin(), lens.end());
    const double median = static_cast<double>(lens[lens.size() / 2]);
    const double mean = static_cast<double>(db.total_residues()) /
                        static_cast<double>(db.size());

    const auto hist = synth::length_histogram(db, edges);
    std::printf("\n%s: median %.0f (paper %s), mean %.0f (paper %s)\n",
                spec.name.c_str(), median, env ? "177" : "292", mean,
                env ? "197" : "355");
    std::printf("%-14s %10s %8s\n", "length bin", "count", "pct");
    std::size_t prev = 0;
    for (std::size_t b = 0; b < hist.size(); ++b) {
      std::string label;
      if (b < edges.size()) {
        label = "(" + std::to_string(prev) + ", " +
                std::to_string(edges[b]) + "]";
        prev = edges[b];
      } else {
        label = "> " + std::to_string(prev);
      }
      std::printf("%-14s %10zu %7.2f%%  %s\n", label.c_str(), hist[b],
                  100.0 * static_cast<double>(hist[b]) /
                      static_cast<double>(db.size()),
                  std::string(std::min<std::size_t>(
                                  60, 60 * hist[b] / std::max<std::size_t>(
                                                         1, db.size() / 4)),
                              '#')
                      .c_str());
    }
    const std::size_t over_1000 =
        static_cast<std::size_t>(std::distance(
            std::upper_bound(lens.begin(), lens.end(), std::size_t{1000}),
            lens.end()));
    std::printf("sequences > 1000 residues: %zu (%.2f%%; paper: 'only few')\n",
                over_1000,
                100.0 * static_cast<double>(over_1000) /
                    static_cast<double>(db.size()));
  }
  return 0;
}
