// Figure 2: profiling numbers and execution time of query-indexed
// NCBI-BLAST ("NCBI") vs database-indexed NCBI-BLAST ("NCBI-db") when
// searching a query of length 512 on env_nr.
//
// Panels reproduced: (a) LLC miss rate, (b) TLB miss rate, (c) stalled
// cycle fraction, (d) execution time. Panels a-c come from the trace-driven
// memory-hierarchy simulator (the container exposes no PMU; see DESIGN.md
// substitutions); panel d is native wall-clock.
//
// Paper's qualitative result: NCBI-db has MUCH higher LLC and TLB miss
// rates, more stalled cycles, and ends up SLOWER than NCBI despite the
// precomputed index.
#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "bench_common.hpp"
#include "index/db_index.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170529);
  // Traced runs pay ~100x simulation overhead; default DB is scaled down
  // but keeps env_nr's length distribution.
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 23);
  const std::size_t qlen = bench::arg_size(argc, argv, "qlen", 512);
  bench::print_header("Figure 2",
                      "NCBI vs NCBI-db profiling, query len 512, env_nr",
                      seed);

  const SequenceStore db = bench::make_db(synth::envnr_like(residues), seed);
  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, 1, qlen, rng);
  const auto query = queries.sequence(0);

  // NCBI-db indexes the database whole — the un-mitigated database-indexed
  // search the paper profiles (blocking is part of the muBLASTP design, not
  // of the NCBI-db baseline in this figure).
  DbIndexConfig cfg;
  cfg.block_bytes = std::size_t{1} << 30;
  const DbIndex index = DbIndex::build(db, cfg);

  const QueryIndexedEngine ncbi(db);
  const InterleavedDbEngine ncbi_db(index);

  // --- Panels (a)-(c): simulated hierarchy metrics. ---------------------
  memsim::MemoryHierarchy h_q;
  ncbi.search_traced(query, h_q);
  const memsim::MemStats sq = h_q.stats();

  memsim::MemoryHierarchy h_d;
  ncbi_db.search_traced(query, h_d);
  const memsim::MemStats sd = h_d.stats();

  // --- Panel (d): native execution time (best of 3), with the per-stage
  // split from the pipeline telemetry of the fastest run. -----------------
  const auto time_engine = [&](const auto& engine) {
    stats::PipelineSnapshot best;
    best.total_seconds = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      stats::PipelineStats ps;
      (void)engine.search(query, ps);
      const stats::PipelineSnapshot snap = ps.snapshot();
      if (snap.total_seconds < best.total_seconds) best = snap;
    }
    return best;
  };
  const stats::PipelineSnapshot s_ncbi = time_engine(ncbi);
  const stats::PipelineSnapshot s_db = time_engine(ncbi_db);
  const double t_ncbi = s_ncbi.total_seconds;
  const double t_db = s_db.total_seconds;

  std::printf("\n%-22s %12s %12s\n", "metric", "NCBI", "NCBI-db");
  std::printf("%-22s %11.2f%% %11.2f%%\n", "(a) LLC miss rate",
              100.0 * sq.llc_miss_rate(), 100.0 * sd.llc_miss_rate());
  std::printf("%-22s %11.3f%% %11.3f%%\n", "(b) TLB miss rate",
              100.0 * sq.tlb_miss_rate(), 100.0 * sd.tlb_miss_rate());
  std::printf("%-22s %11.2f%% %11.2f%%\n", "(c) stalled cycles",
              100.0 * sq.stalled_cycle_fraction(),
              100.0 * sd.stalled_cycle_fraction());
  std::printf("%-22s %11.4fs %11.4fs\n", "(d) execution time", t_ncbi, t_db);
  std::printf("\nNCBI-db / NCBI time ratio: %.2fx  (paper: NCBI-db slower, "
              "ratio > 1)\n", t_db / t_ncbi);
  std::printf("LLC miss ratio (db/q): %.1fx   TLB miss ratio (db/q): %.1fx\n",
              sd.llc_miss_rate() / std::max(1e-9, sq.llc_miss_rate()),
              sd.tlb_miss_rate() / std::max(1e-9, sq.tlb_miss_rate()));

  std::printf("\nper-stage split of the fastest run (seconds):\n");
  std::printf("%-22s %12s %12s\n", "stage", "NCBI", "NCBI-db");
  for (int s = 0; s < stats::kNumStages; ++s) {
    std::printf("%-22s %12.4f %12.4f\n",
                stats::stage_name(static_cast<stats::Stage>(s)),
                s_ncbi.stage_seconds[s], s_db.stage_seconds[s]);
  }
  return 0;
}
