// Ablation: loop order of the batch pipeline (paper Algorithm 3).
//
// muBLASTP keeps the index-block loop OUTERMOST and iterates queries inside
// it, so each block is loaded into cache once and reused by every query
// (and, on a multicore, shared by every thread). The alternative —
// query-outer, block-inner — performs the same work but re-streams every
// block once per query. Both orders produce identical results; the time
// difference is pure locality, the effect Algorithm 3 is designed around.
// The effect grows with index size relative to the LLC; --residues scales
// the database.
#include "bench_common.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"

int main(int argc, char** argv) {
  using namespace mublastp;
  const std::uint64_t seed = bench::arg_size(argc, argv, "seed", 20170303);
  const std::size_t residues =
      bench::arg_size(argc, argv, "residues", std::size_t{1} << 23);
  const std::size_t batch = bench::arg_size(argc, argv, "batch", 24);
  bench::print_header("Ablation: Algorithm 3 loop order",
                      "block-outer (shared block) vs query-outer", seed);

  const SequenceStore db = bench::make_db(synth::envnr_like(residues), seed);
  DbIndexConfig cfg;
  cfg.block_bytes = 512 * 1024;
  const DbIndex index = DbIndex::build(db, cfg);
  std::size_t index_bytes = 0;
  for (const auto& b : index.blocks()) index_bytes += b.position_bytes();
  std::printf("index: %zu blocks, %.1f MB of positions\n",
              index.blocks().size(),
              static_cast<double>(index_bytes) / (1 << 20));

  Rng rng(seed + 1);
  const SequenceStore queries = synth::sample_queries(db, batch, 256, rng);
  const MuBlastpEngine engine(index);

  // Block-outer: Algorithm 3's order (search_batch with one thread uses
  // exactly this structure).
  Timer t;
  const auto block_outer = engine.search_batch(queries, 1);
  const double t_block_outer = t.seconds();

  // Query-outer: each query walks all blocks before the next query starts.
  t.reset();
  std::vector<QueryResult> query_outer;
  for (SeqId q = 0; q < queries.size(); ++q) {
    query_outer.push_back(engine.search(queries.sequence(q)));
  }
  const double t_query_outer = t.seconds();

  // Same results either way (the reordering is purely a schedule change).
  std::size_t mismatches = 0;
  for (SeqId q = 0; q < queries.size(); ++q) {
    if (block_outer[q].ungapped != query_outer[q].ungapped) ++mismatches;
  }

  std::printf("\n%-34s %10.3fs\n", "block-outer (Algorithm 3)",
              t_block_outer);
  std::printf("%-34s %10.3fs\n", "query-outer (baseline order)",
              t_query_outer);
  std::printf("%-34s %10.2fx\n", "block-outer advantage",
              t_query_outer / t_block_outer);
  std::printf("result mismatches: %zu (must be 0)\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
