// Ablation: hit-detection data structure — NCBI lookup table (+ pv array,
// thick backbone) vs FSA-BLAST's DFA (paper Related Work, [16] vs [37]).
//
// Measures raw scan throughput of both detectors over the same subject
// stream, plus per-query index build time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "index/dfa_index.hpp"
#include "index/query_index.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

struct Fixture {
  SequenceStore db;
  NeighborTable neighbors{blosum62(), kDefaultNeighborThreshold};
  std::vector<Residue> query;

  Fixture()
      : db(synth::generate_database(synth::envnr_like(std::size_t{1} << 21),
                                    55)) {
    Rng rng(56);
    const SequenceStore q = synth::sample_queries(db, 1, 256, rng);
    query.assign(q.sequence(0).begin(), q.sequence(0).end());
  }

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

void BM_ScanLookupTable(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const QueryIndex idx(f.query, f.neighbors);
  std::uint64_t hits = 0;
  std::uint64_t residues = 0;
  for (auto _ : state) {
    for (SeqId s = 0; s < f.db.size(); ++s) {
      const auto subject = f.db.sequence(s);
      if (subject.size() < static_cast<std::size_t>(kWordLength)) continue;
      residues += subject.size();
      for (std::uint32_t soff = 0; soff + kWordLength <= subject.size();
           ++soff) {
        const std::uint32_t w = word_key(subject.data() + soff);
        if (!idx.contains(w)) continue;
        for (const std::uint32_t qoff : idx.positions(w)) {
          hits += qoff + 1;  // consume to defeat DCE
        }
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(residues));
}

void BM_ScanDfa(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const DfaQueryIndex dfa(f.query, f.neighbors);
  std::uint64_t hits = 0;
  std::uint64_t residues = 0;
  for (auto _ : state) {
    for (SeqId s = 0; s < f.db.size(); ++s) {
      const auto subject = f.db.sequence(s);
      residues += subject.size();
      dfa.scan(subject, [&](std::uint32_t, std::uint32_t qoff) {
        hits += qoff + 1;
      });
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(residues));
}

void BM_BuildLookupTable(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  for (auto _ : state) {
    const QueryIndex idx(f.query, f.neighbors);
    benchmark::DoNotOptimize(idx.total_positions());
  }
}

void BM_BuildDfa(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  for (auto _ : state) {
    const DfaQueryIndex dfa(f.query, f.neighbors);
    benchmark::DoNotOptimize(dfa.total_positions());
  }
}

BENCHMARK(BM_ScanLookupTable)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanDfa)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildLookupTable)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildDfa)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
