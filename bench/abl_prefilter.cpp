// Ablation A3: hit pre-filtering on/off (paper Section IV-C, Algorithm 2
// vs Algorithm 1).
//
// With the pre-filter, only two-hit pairs reach the radix sort; without it,
// every hit is sorted and filtered afterwards. The paper's claim: the
// pre-filter reduces the sorted volume to <5% and cuts total time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace {

using namespace mublastp;

struct Fixture {
  SequenceStore db;
  DbIndex index;
  SequenceStore queries;

  Fixture()
      : db(synth::generate_database(synth::sprot_like(std::size_t{1} << 21),
                                    77)),
        index(DbIndex::build(db, {})) {
    Rng rng(78);
    queries = synth::sample_queries(db, 4, 256, rng);
  }

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

// Shared measurement loop: reports the sorted volume and the per-stage
// split so the sort savings are visible even when extension dominates.
void run_variant(benchmark::State& state, const MuBlastpEngine& engine) {
  const Fixture& f = Fixture::get();
  stats::PipelineSnapshot total;
  for (auto _ : state) {
    for (SeqId q = 0; q < f.queries.size(); ++q) {
      stats::PipelineStats ps;
      const QueryResult r = engine.search(f.queries.sequence(q), ps);
      total.merge(ps.snapshot());
      benchmark::DoNotOptimize(r.alignments.data());
    }
  }
  const double runs =
      static_cast<double>(state.iterations() * f.queries.size());
  const auto& c = total.totals;
  state.counters["sorted_records_per_query"] =
      static_cast<double>(c.sorted_records) / runs;
  state.counters["sorted_pct_of_hits"] =
      100.0 * static_cast<double>(c.sorted_records) /
      static_cast<double>(c.hits);
  const auto sec = [&](stats::Stage s) {
    return total.stage_seconds[static_cast<int>(s)];
  };
  state.counters["sort_ms_per_query"] =
      1e3 * sec(stats::Stage::kSort) / runs;
  state.counters["detect_ms_per_query"] =
      1e3 * sec(stats::Stage::kHitDetect) / runs;
  state.counters["extend_ms_per_query"] =
      1e3 * sec(stats::Stage::kUngapped) / runs;
}

void BM_WithPrefilter(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  MuBlastpOptions opt;
  opt.prefilter = true;
  const MuBlastpEngine engine(f.index, {}, opt);
  run_variant(state, engine);
}

void BM_WithoutPrefilter(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  MuBlastpOptions opt;
  opt.prefilter = false;
  const MuBlastpEngine engine(f.index, {}, opt);
  run_variant(state, engine);
}

BENCHMARK(BM_WithPrefilter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithoutPrefilter)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
