#!/usr/bin/env bash
# Kill-and-resume check for the checkpointed batch runner: start a
# checkpointed search, kill -9 it after at least one batch is journaled,
# resume it, and require the resumed output to be BIT-IDENTICAL to an
# uninterrupted run. Run from anywhere:
#
#   scripts/kill_and_resume.sh [BUILD_DIR]
#
# Exits nonzero (with a diff) on any divergence. Used by the CI
# fault-matrix job; cheap enough to run locally.
set -euo pipefail

BUILD_DIR=${1:-build}
TOOLS="$BUILD_DIR/tools"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mublastp_resume.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

for tool in mublastp_synthgen mublastp_makedb mublastp_search; do
  if [[ ! -x "$TOOLS/$tool" ]]; then
    echo "error: $TOOLS/$tool not built" >&2
    exit 2
  fi
done

echo "== generating workload =="
"$TOOLS/mublastp_synthgen" --preset=sprot --residues=400000 --seed=7 \
  --out="$WORK/db.fasta" --queries=24 --qlen=96 --qout="$WORK/q.fasta"
"$TOOLS/mublastp_makedb" --in="$WORK/db.fasta" --out="$WORK/db.mbi" \
  --block-kb=64

SEARCH=("$TOOLS/mublastp_search" --index="$WORK/db.mbi" \
  --query="$WORK/q.fasta" --outfmt=tabular --threads=1 --batch-size=2)

echo "== uninterrupted reference run =="
"${SEARCH[@]}" --out="$WORK/reference.tab" \
  --checkpoint="$WORK/reference.ckpt" 2>/dev/null

echo "== interrupted run (kill -9 mid-batch) =="
# 16 bytes of header + 24 per journaled batch: wait for >= 1 record, then
# kill hard. If the run finishes before we get to kill it, that is a valid
# (if unlucky) pass for the journaling half; the resume below still checks
# the no-op-resume path.
"${SEARCH[@]}" --out="$WORK/resumed.tab" \
  --checkpoint="$WORK/resumed.ckpt" 2>/dev/null &
pid=$!
for _ in $(seq 1 600); do
  size=$(stat -c %s "$WORK/resumed.ckpt" 2>/dev/null || echo 0)
  if [[ "$size" -ge 40 ]]; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  sleep 0.05
done
if kill -9 "$pid" 2>/dev/null; then
  echo "killed pid $pid with a populated journal ($size bytes)"
fi
wait "$pid" 2>/dev/null || true

records_before=$(( ($(stat -c %s "$WORK/resumed.ckpt") - 16) / 24 ))
total_batches=12  # 24 queries / batch-size 2
echo "journal holds $records_before of $total_batches batches"

echo "== resume =="
"${SEARCH[@]}" --out="$WORK/resumed.tab" \
  --checkpoint="$WORK/resumed.ckpt" 2>"$WORK/resume.log"
if [[ "$records_before" -gt 0 && "$records_before" -lt "$total_batches" ]]; then
  grep -q "resuming:" "$WORK/resume.log" || {
    echo "error: resume did not report journaled batches" >&2
    cat "$WORK/resume.log" >&2
    exit 1
  }
fi

echo "== compare =="
if ! cmp "$WORK/reference.tab" "$WORK/resumed.tab"; then
  echo "error: resumed output differs from uninterrupted run" >&2
  diff "$WORK/reference.tab" "$WORK/resumed.tab" | head -40 >&2 || true
  exit 1
fi
echo "PASS: resumed output is bit-identical ($(stat -c %s "$WORK/reference.tab") bytes)"
