#!/usr/bin/env bash
# Kill-anywhere campaign for incremental index builds: SIGKILL
# `mublastp_makedb --append` (and --compact) at every build-path fault
# site via MUBLASTP_FAULTS_KILL, then require that the database reloads
# and searches BIT-IDENTICALLY to one of the two adjacent generations —
# never a torn in-between state. Orphaned temp files must be cleaned by
# the retried build. Run from anywhere:
#
#   scripts/kill_during_append.sh [BUILD_DIR]
#
# Exits nonzero (with a diff) on any divergence. Used by the CI
# incremental-crash-matrix job; cheap enough to run locally.
# docs/INCREMENTAL.md walks through the publish ordering this proves.
set -euo pipefail

BUILD_DIR=${1:-build}
TOOLS="$BUILD_DIR/tools"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mublastp_killgen.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

for tool in mublastp_synthgen mublastp_makedb mublastp_search mublastp_dbinfo; do
  if [[ ! -x "$TOOLS/$tool" ]]; then
    echo "error: $TOOLS/$tool not built" >&2
    exit 2
  fi
done

echo "== generating workload =="
"$TOOLS/mublastp_synthgen" --preset=sprot --residues=200000 --seed=71 \
  --out="$WORK/base.fasta" --queries=8 --qlen=96 --qout="$WORK/q.fasta"
"$TOOLS/mublastp_synthgen" --preset=sprot --residues=80000 --seed=72 \
  --out="$WORK/delta.fasta"

search() { # search <dir> <out>
  "$TOOLS/mublastp_search" --index="$1/db.mbi" --query="$WORK/q.fasta" \
    --outfmt=tabular --threads=1 --out="$2" 2>/dev/null
}

echo "== references (pre-append and post-append generations) =="
mkdir "$WORK/ref"
"$TOOLS/mublastp_makedb" --in="$WORK/base.fasta" --out="$WORK/ref/db.mbi" \
  >/dev/null 2>&1
search "$WORK/ref" "$WORK/pre.tab"
"$TOOLS/mublastp_makedb" --append="$WORK/delta.fasta" \
  --out="$WORK/ref/db.mbi" >/dev/null 2>&1
search "$WORK/ref" "$WORK/post.tab"
if cmp -s "$WORK/pre.tab" "$WORK/post.tab"; then
  echo "error: pre/post references are identical — workload too small" >&2
  exit 2
fi

# The per-site loop: clone the pre-append state, kill the append at the
# site, then check the recovery invariant.
failures=0
check_site() { # check_site <phase> <killspec>
  local phase=$1 killspec=$2
  local dir="$WORK/${phase}_${killspec//[:.]/_}"
  mkdir "$dir"
  cp "$WORK/ref_pre/"db.mbi* "$dir/" 2>/dev/null || true

  local rc=0
  if [[ "$phase" == append ]]; then
    MUBLASTP_FAULTS_KILL="$killspec" "$TOOLS/mublastp_makedb" \
      --append="$WORK/delta.fasta" --out="$dir/db.mbi" \
      >/dev/null 2>&1 || rc=$?
  else
    cp "$WORK/ref_post/"db.mbi* "$dir/" 2>/dev/null || true
    MUBLASTP_FAULTS_KILL="$killspec" "$TOOLS/mublastp_makedb" \
      --compact --out="$dir/db.mbi" >/dev/null 2>&1 || rc=$?
  fi
  if [[ "$rc" -ne 137 ]]; then
    # The site was never evaluated in this phase (e.g. gc_unlink with no
    # orphans): the build completed — still a valid state, fall through.
    echo "  [$phase $killspec] not evaluated (exit $rc)"
  else
    echo "  [$phase $killspec] SIGKILL fired"
  fi

  # Invariant 1: the database reloads.
  if ! "$TOOLS/mublastp_dbinfo" --index="$dir/db.mbi" >/dev/null 2>&1; then
    echo "FAIL [$phase $killspec]: database does not reload after kill" >&2
    failures=$((failures + 1))
    return 0
  fi
  # Invariant 2: search output equals one of the two adjacent generations.
  search "$dir" "$dir/got.tab"
  if ! cmp -s "$dir/got.tab" "$WORK/pre.tab" && \
     ! cmp -s "$dir/got.tab" "$WORK/post.tab"; then
    echo "FAIL [$phase $killspec]: output matches NEITHER adjacent" \
         "generation" >&2
    diff "$dir/got.tab" "$WORK/post.tab" | head -20 >&2 || true
    failures=$((failures + 1))
    return 0
  fi
  # Invariant 3: the retried build heals — orphan temps cleaned, the next
  # generation published, output equal to the post-append reference.
  if [[ "$phase" == append ]]; then
    if ! cmp -s "$dir/got.tab" "$WORK/post.tab"; then
      "$TOOLS/mublastp_makedb" --append="$WORK/delta.fasta" \
        --out="$dir/db.mbi" >/dev/null 2>&1
    fi
  else
    "$TOOLS/mublastp_makedb" --compact --out="$dir/db.mbi" >/dev/null 2>&1
  fi
  if compgen -G "$dir/db.mbi*.tmp" >/dev/null; then
    echo "FAIL [$phase $killspec]: orphan temps survived the retried" \
         "build" >&2
    failures=$((failures + 1))
    return 0
  fi
  search "$dir" "$dir/healed.tab"
  if ! cmp -s "$dir/healed.tab" "$WORK/post.tab"; then
    echo "FAIL [$phase $killspec]: retried build output differs" >&2
    diff "$dir/healed.tab" "$WORK/post.tab" | head -20 >&2 || true
    failures=$((failures + 1))
    return 0
  fi
  echo "  [$phase $killspec] OK (reload + adjacent-generation + heal)"
}

echo "== pristine pre-append state =="
mkdir "$WORK/ref_pre"
"$TOOLS/mublastp_makedb" --in="$WORK/base.fasta" \
  --out="$WORK/ref_pre/db.mbi" >/dev/null 2>&1
mkdir "$WORK/ref_post"
cp "$WORK/ref_pre/"db.mbi* "$WORK/ref_post/"
"$TOOLS/mublastp_makedb" --append="$WORK/delta.fasta" \
  --out="$WORK/ref_post/db.mbi" >/dev/null 2>&1

echo "== kill matrix: append =="
for spec in build.block_write:1 build.fsync:1 build.fsync:2 build.fsync:3 \
            build.fsync:4 build.manifest_write:1 build.publish_rename:1 \
            build.publish_rename:2; do
  check_site append "$spec"
done

echo "== kill matrix: compact =="
for spec in build.block_write:1 build.fsync:1 build.fsync:2 \
            build.manifest_write:1 build.publish_rename:1 \
            build.publish_rename:2 build.gc_unlink:1 build.gc_unlink:2; do
  check_site compact "$spec"
done

if [[ "$failures" -ne 0 ]]; then
  echo "FAIL: $failures kill site(s) violated the recovery invariant" >&2
  exit 1
fi
echo "PASS: every kill site left an adjacent, reloadable, healable generation"
